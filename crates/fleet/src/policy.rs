//! Pluggable BE job placement policies.
//!
//! All four policies see the same [`PlacementStore`] table; they differ in
//! how much of it they use:
//!
//! * [`RandomPlacement`] — any server with a free slot whose controller has
//!   not disabled BE, chosen uniformly.  The naive baseline: it ignores
//!   load, slack and interference entirely, but even a naive scheduler does
//!   not dispatch onto a server that advertises "BE disabled" — a job
//!   placed there sits at zero progress until it burns its preemption
//!   grace.
//! * [`FirstFit`] — the lowest-numbered server where the job *fits*, where
//!   fitting means a free slot on a server healthy enough to admit BE work
//!   (positive latency slack, per [`ServerEntry::admits_be`]).  This is the
//!   classic packing heuristic of cluster placement stores, with the
//!   admission verdict standing in for the capacity check.
//! * [`LeastLoaded`] — among admitting servers, the one offering a new job
//!   the most *marginal headroom in absolute cores* (free capacity split
//!   with the resident jobs).  On a uniform fleet this is classic
//!   least-loaded placement; on a mixed fleet it is what capacity
//!   awareness means: a 48-core box at 40% load outranks a 16-core box at
//!   30%.
//! * [`InterferenceAware`] — additionally consults the §3.2 interference
//!   characterization (measured per hardware generation: the same
//!   antagonist that devastates a low-bandwidth Sandy Bridge box can be
//!   benign on a Skylake) and the store's load trend: a job whose workload
//!   devastates a near-knee LC service (stream-DRAM, streetview, …) is
//!   steered onto servers far from their latency knee (and projected to
//!   stay there), DRAM-hungry jobs prefer high-bandwidth generations,
//!   benign jobs fill moderately loaded servers, and same-kind jobs are
//!   chained onto one server so a successor inherits the grown BE
//!   allocation without a conservative controller restart.

use std::collections::{BinaryHeap, HashMap};

use heracles_colo::characterize::characterize_cell;
use heracles_colo::ColoConfig;
use heracles_hw::ServerConfig;
use heracles_sim::{parallel_map, SimRng};
use heracles_workloads::{BeKind, BeWorkload, LcKind, LcWorkload};

use crate::job::BeJob;
use crate::store::{PlacementStore, ServerEntry, ServerId, REFERENCE_DRAM_GBPS};

/// A fleet-level policy deciding which server hosts a BE job.
///
/// Implementations must only return servers with a free BE slot (the store
/// panics on oversubscription); returning `None` leaves the job queued for
/// the next dispatch round.
pub trait PlacementPolicy: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Starts a batch-dispatch round over the store's current state.
    ///
    /// During one round only slot occupancy changes — loads, slacks,
    /// verdicts and attachments are fixed until the next step — so a policy
    /// may precompute a round plan here (candidate indices, score heaps)
    /// and serve every `place` call of the round from it instead of
    /// re-scanning the fleet per job.  The round's contract: between
    /// `begin_round` and the round's last `place`, the only store mutation
    /// is committing each returned placement (via
    /// [`PlacementStore::place`]) before the next `place` call.  Plans must
    /// reproduce the per-job full-scan decisions exactly; the default is a
    /// no-op, leaving the policy on its full-scan path (which callers that
    /// never call `begin_round` keep using).
    fn begin_round(&mut self, _store: &PlacementStore) {}

    /// Chooses a server for `job`, or `None` to leave it queued.
    fn place(&mut self, job: &BeJob, store: &PlacementStore, rng: &mut SimRng) -> Option<ServerId>;

    /// Candidate entries remaining in the policy's active round plan, or
    /// `None` when the policy has no plan (full-scan mode, or no round
    /// begun).  Pure observability for the fleet's dispatch-round trace
    /// events; policies that build plans lazily (per job profile) report
    /// the entries built so far.
    fn round_candidates(&self) -> Option<usize> {
        None
    }
}

/// Fleet size above which round-plan construction fans out across the
/// store's pool shards with [`parallel_map`]; below it a serial scan wins
/// on thread overhead.  Either path visits the same candidates and builds
/// the same plan, so the threshold never changes placement decisions.
const PARALLEL_PLAN_MIN_SERVERS: usize = 512;

/// One candidate in a score-ordered round plan.  The heap is a *lazy*
/// argmax: entries are validated against the live resident count when
/// popped, because scores strictly decrease as residents accrue within a
/// round — a stale entry is an upper bound, never an understatement.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    id: ServerId,
    /// Resident count the score was computed at (the only server state
    /// that changes within a round, and it uniquely determines the score).
    residents: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Max-heap order matching the scan policies' `max_by` comparator:
    /// higher score first, ties to the smaller id.  `total_cmp` agrees
    /// with `partial_cmp` on the finite, strictly positive scores both
    /// policies produce, and the id tiebreak makes the order total, so
    /// pop order is unique whatever the insertion order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.total_cmp(&other.score).then(other.id.cmp(&self.id))
    }
}

/// Scores every admitting server into a max-heap, scanning shard-by-shard
/// (in parallel on large fleets).
fn scored_candidates<F>(store: &PlacementStore, score: &F) -> BinaryHeap<HeapEntry>
where
    F: Fn(&ServerEntry, usize) -> f64 + Sync,
{
    let entry_of = |id: ServerId| {
        let server = store.server(id);
        server.admits_be().then(|| HeapEntry {
            score: score(server, server.resident.len()),
            id,
            residents: server.resident.len(),
        })
    };
    let shards = store.shards();
    if store.servers().len() >= PARALLEL_PLAN_MIN_SERVERS && shards.len() > 1 {
        let per_shard: Vec<Vec<HeapEntry>> = parallel_map(shards, |shard| {
            shard.members().iter().filter_map(|&id| entry_of(id)).collect()
        });
        per_shard.into_iter().flatten().collect()
    } else {
        shards.iter().flat_map(|s| s.members().iter().filter_map(|&id| entry_of(id))).collect()
    }
}

/// Pops the current argmax from a lazy score heap, refreshing it for the
/// placement about to be committed.
///
/// Popped entries are validated against the live store: a server that no
/// longer admits (its last slot was taken this round) drops out; a stale
/// resident count is re-scored and re-queued (scores only shrink as
/// residents accrue, so the stale entry was an upper bound and the re-queue
/// keeps the argmax exact).  A returned winner is immediately re-queued at
/// its post-commit score when a slot will remain, so the heap always holds
/// exactly one entry per still-eligible server.
fn pop_best<F>(
    heap: &mut BinaryHeap<HeapEntry>,
    store: &PlacementStore,
    score: &F,
) -> Option<ServerId>
where
    F: Fn(&ServerEntry, usize) -> f64,
{
    while let Some(entry) = heap.pop() {
        let server = store.server(entry.id);
        if !server.admits_be() {
            continue;
        }
        let residents = server.resident.len();
        if entry.residents != residents {
            heap.push(HeapEntry { score: score(server, residents), id: entry.id, residents });
            continue;
        }
        if server.free_slots() > 1 {
            // The caller commits this placement before the next `place`:
            // queue the score the server will have with one more resident.
            heap.push(HeapEntry {
                score: score(server, residents + 1),
                id: entry.id,
                residents: residents + 1,
            });
        }
        return Some(entry.id);
    }
    None
}

/// A round plan over slot-gated candidates: a Fenwick (binary indexed)
/// tree of candidate indicators by server id, plus the remaining free
/// slots per candidate.  Supports O(log n) rank-k selection in ascending
/// id order — exactly the order the full-scan paths of [`RandomPlacement`]
/// (uniform draw) and [`FirstFit`] (rank 0) enumerate candidates in.
#[derive(Debug, Clone)]
struct SlotPlan {
    /// 1-indexed Fenwick tree over candidate indicators.
    tree: Vec<usize>,
    /// Remaining free slots per server id (0 = not a candidate).
    free: Vec<usize>,
    candidates: usize,
}

impl SlotPlan {
    /// Builds the plan over every server passing `candidate` (the round's
    /// static admission predicate) that has a free slot, scanning
    /// shard-by-shard (in parallel on large fleets).
    fn build<F>(store: &PlacementStore, candidate: &F) -> Self
    where
        F: Fn(&ServerEntry) -> bool + Sync,
    {
        let n = store.servers().len();
        let mut plan = SlotPlan { tree: vec![0; n + 1], free: vec![0; n], candidates: 0 };
        let slots_of = |id: ServerId| {
            let server = store.server(id);
            (candidate(server) && server.has_free_slot()).then(|| (id, server.free_slots()))
        };
        let shards = store.shards();
        let found: Vec<(ServerId, usize)> = if n >= PARALLEL_PLAN_MIN_SERVERS && shards.len() > 1 {
            parallel_map(shards, |shard| {
                shard
                    .members()
                    .iter()
                    .filter_map(|&id| slots_of(id))
                    .collect::<Vec<(ServerId, usize)>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            shards.iter().flat_map(|s| s.members().iter().filter_map(|&id| slots_of(id))).collect()
        };
        for (id, slots) in found {
            plan.free[id] = slots;
            plan.tree_add(id);
            plan.candidates += 1;
        }
        plan
    }

    fn tree_add(&mut self, id: ServerId) {
        let mut i = id + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    fn tree_sub(&mut self, id: ServerId) {
        let mut i = id + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// The id of the rank-`k` candidate in ascending id order (0-based).
    fn select(&self, k: usize) -> ServerId {
        debug_assert!(k < self.candidates);
        let n = self.tree.len() - 1;
        let mut pos = 0;
        let mut remaining = k + 1;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos
    }

    /// Consumes one slot on a candidate, dropping it once full.
    fn take(&mut self, id: ServerId) {
        debug_assert!(self.free[id] > 0);
        self.free[id] -= 1;
        if self.free[id] == 0 {
            self.tree_sub(id);
            self.candidates -= 1;
        }
    }
}

/// The built-in placement policies, in the order the sweeps report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Uniform over servers with a free slot.
    Random,
    /// Lowest-numbered admitting server.
    FirstFit,
    /// Admitting server with the most marginal headroom (absolute free
    /// cores split with resident jobs).
    LeastLoaded,
    /// Interference-characterization-guided placement.
    InterferenceAware,
}

impl PolicyKind {
    /// All built-in policies, in reporting order.
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::Random,
            PolicyKind::FirstFit,
            PolicyKind::LeastLoaded,
            PolicyKind::InterferenceAware,
        ]
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Random => "random",
            PolicyKind::FirstFit => "first-fit",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::InterferenceAware => "interference-aware",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(PolicyKind::Random),
            "first-fit" => Ok(PolicyKind::FirstFit),
            "least-loaded" => Ok(PolicyKind::LeastLoaded),
            "interference-aware" => Ok(PolicyKind::InterferenceAware),
            other => Err(format!(
                "unknown policy {other:?} (expected random, first-fit, least-loaded or interference-aware)"
            )),
        }
    }
}

/// Uniform choice over active servers with a free slot whose controller
/// currently allows BE execution.  Deliberately blind to load, slack, trend
/// and interference — but not to the controller's hard "BE disabled"
/// verdict, which no real dispatcher would ignore, nor to the lifecycle
/// table (a draining or retired server is not a placement target for any
/// scheduler, however naive).
#[derive(Debug, Default)]
pub struct RandomPlacement {
    plan: Option<SlotPlan>,
}

/// Random's (deliberately weak) candidate predicate, minus the slot check:
/// it ignores slack, load and trend, but not the lifecycle table or the
/// controller's hard "BE disabled" verdict.
fn random_candidate(s: &ServerEntry) -> bool {
    s.is_active() && s.be_admitted
}

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &str {
        "random"
    }

    fn begin_round(&mut self, store: &PlacementStore) {
        self.plan = Some(SlotPlan::build(store, &random_candidate));
    }

    fn round_candidates(&self) -> Option<usize> {
        self.plan.as_ref().map(|p| p.candidates)
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        rng: &mut SimRng,
    ) -> Option<ServerId> {
        if let Some(plan) = self.plan.as_mut() {
            if plan.candidates == 0 {
                return None;
            }
            // One `rng.index(count)` per non-empty candidate set, selecting
            // the rank-k candidate in ascending id order — the exact seeded
            // choice (and RNG call sequence) of the full scan below.
            let id = plan.select(rng.index(plan.candidates));
            plan.take(id);
            return Some(id);
        }
        // Full-scan path: count, then select — two passes, no per-job
        // candidate vector.
        let candidate = |s: &&ServerEntry| random_candidate(s) && s.has_free_slot();
        let count = store.servers().iter().filter(candidate).count();
        if count == 0 {
            return None;
        }
        let k = rng.index(count);
        store.servers().iter().filter(candidate).nth(k).map(|s| s.id)
    }
}

/// Lowest-numbered server where the job fits (free slot + admission).
#[derive(Debug, Default)]
pub struct FirstFit {
    plan: Option<SlotPlan>,
}

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &str {
        "first-fit"
    }

    fn begin_round(&mut self, store: &PlacementStore) {
        self.plan = Some(SlotPlan::build(store, &ServerEntry::admits_be_static));
    }

    fn round_candidates(&self) -> Option<usize> {
        self.plan.as_ref().map(|p| p.candidates)
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        if let Some(plan) = self.plan.as_mut() {
            if plan.candidates == 0 {
                return None;
            }
            // Rank 0 in ascending id order is exactly the full scan's
            // first admitting server.
            let id = plan.select(0);
            plan.take(id);
            return Some(id);
        }
        store.servers().iter().find(|s| s.admits_be()).map(|s| s.id)
    }
}

/// Admitting server with the most *marginal headroom* for a new job: the
/// server's free compute in absolute cores, split across the jobs that
/// would share its BE slice.
///
/// On a uniform fleet this reduces to classic least-loaded placement (the
/// lowest LC load wins).  On a mixed fleet the ranking is where capacity
/// awareness earns its keep: a 48-core box at 40% load has far more
/// machine time to give a job than a 16-core box at 30%, so ranking by
/// load *fraction* — the homogeneous habit — systematically wastes the big
/// boxes.  Dividing by `1 + residents` folds in the occupancy cost:
/// resident jobs share their server's BE slice, so the marginal throughput
/// of joining an occupied server shrinks with each incumbent.
#[derive(Debug, Default)]
pub struct LeastLoaded {
    plan: Option<BinaryHeap<HeapEntry>>,
}

/// [`LeastLoaded`]'s score at a given resident count (the only per-round
/// variable): strictly decreasing in `residents`, which is what makes the
/// lazy heap's stale entries safe upper bounds.
fn least_loaded_score(server: &ServerEntry, residents: usize) -> f64 {
    marginal_headroom_cores(
        server,
        server.projected_load(LEAST_LOADED_TREND_HORIZON),
        residents as f64,
    )
}

/// How far ahead [`LeastLoaded`] projects the load trend when ranking
/// headroom: far enough that a server climbing towards its peak loses
/// against one descending from it, shorter than [`InterferenceAware`]'s
/// horizon (which also prices the controller's ramp-up investment).
const LEAST_LOADED_TREND_HORIZON: f64 = 4.0;

/// The marginal free compute (in cores) a new job would enjoy on a server:
/// the capacity the LC service is not projected to use, split with the
/// effective crowd sharing the BE slice.
///
/// Floored at half a core: when a server's projected load pins at 1.0 the
/// raw headroom is zero for *every* such server, and a hard zero would
/// erase all remaining discrimination (crowding here, and the multiplied
/// interference/affinity factors in [`InterferenceAware`]'s score).
///
/// Public because the autoscaler's drain pricer ranks migration
/// *destinations* by exactly this quantity — a move from a 16-core box to a
/// 48-core one changes the job's progress rate, so the move is priced
/// against the destination's marginal headroom, not its load fraction.
pub fn marginal_headroom_cores(server: &ServerEntry, projected_load: f64, crowd: f64) -> f64 {
    (server.cores as f64 * (1.0 - projected_load)).max(0.5) / (1.0 + crowd)
}

/// [`InterferenceAware`]'s occupancy discount when the incumbent BE
/// workload is of the same kind as the job being placed (kind-affinity: the
/// newcomer shares, then inherits, the grown allocation with no controller
/// restart, so the effective crowd is smaller than the head count).
const SAME_KIND_OCCUPANCY_DISCOUNT: f64 = 0.25;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn begin_round(&mut self, store: &PlacementStore) {
        self.plan = Some(scored_candidates(store, &least_loaded_score));
    }

    fn round_candidates(&self) -> Option<usize> {
        self.plan.as_ref().map(|h| h.len())
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        if let Some(heap) = self.plan.as_mut() {
            return pop_best(heap, store, &least_loaded_score);
        }
        store
            .servers()
            .iter()
            .filter(|s| s.admits_be())
            .max_by(|a, b| {
                let headroom = |s: &ServerEntry| least_loaded_score(s, s.resident.len());
                headroom(a)
                    .partial_cmp(&headroom(b))
                    .expect("headroom is finite")
                    .then(b.id.cmp(&a.id))
            })
            .map(|s| s.id)
    }
}

/// How hostile each BE workload is to a colocated LC service, measured from
/// the paper's §3.2 interference characterization (Figure 1), per
/// (hardware generation, LC service) cell.
///
/// Each workload is run as an antagonist against the cell's LC workload at
/// 20% load with the characterization's fixed layouts; the amount by which
/// the resulting tail latency overshoots the SLO is the hostility score (0
/// for workloads that leave the SLO intact, ~1+ for DRAM streaming).  Low
/// load is where Figure 1 separates the antagonists most sharply — the
/// antagonist holds most of the machine, so the damage it can do is fully
/// expressed.
///
/// The key is two-dimensional because interference is: the same antagonist
/// saturates a low-bandwidth Sandy Bridge long before it dents a Skylake
/// (the hardware axis), and an iperf-style network streamer that barely
/// registers next to ml_cluster devastates a network-bound memkeyval leaf
/// (the service axis).  Cells sharing an identical (LC workload, hardware)
/// pair share one characterization run — the cells are cached by content,
/// not by index.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceModel {
    /// Measured scores, keyed by (generation index, LC service, workload
    /// kind).
    hostility: HashMap<(usize, LcKind, BeKind), f64>,
    /// Service-agnostic per-generation scores (from
    /// [`from_generation_scores`]); consulted when a full cell was never
    /// measured.
    ///
    /// [`from_generation_scores`]: InterferenceModel::from_generation_scores
    by_generation: HashMap<(usize, BeKind), f64>,
    /// Generation- and service-independent scores (from [`from_scores`]);
    /// the last fallback before the cautious default.
    ///
    /// [`from_scores`]: InterferenceModel::from_scores
    uniform: HashMap<BeKind, f64>,
}

impl InterferenceModel {
    /// Load at which the characterization cells are measured.
    const PROBE_LOAD: f64 = 0.2;

    /// Measures hostility scores for `kinds` against each (generation,
    /// service) cell's LC workload and hardware configuration, running one
    /// characterization per *distinct* (workload, `ServerConfig`) pair
    /// (duplicates share the measurement) with all cells in parallel.
    ///
    /// `cells` carries one entry per (generation index, service) pair
    /// present in the fleet, with the service's workload already scaled to
    /// the generation's capacity.
    pub fn characterize(
        kinds: &[BeWorkload],
        cells: &[(usize, LcKind, LcWorkload, ServerConfig)],
        colo: &ColoConfig,
    ) -> Self {
        // Cache: point each cell at the first cell with an equal
        // (workload, hardware) pair, and only measure those.
        let source_of: Vec<usize> = cells
            .iter()
            .enumerate()
            .map(|(i, (_, _, lc, config))| {
                cells[..i]
                    .iter()
                    .position(|(_, _, plc, pconfig)| pconfig == config && plc == lc)
                    .unwrap_or(i)
            })
            .collect();
        let probes: Vec<(usize, BeWorkload)> = source_of
            .iter()
            .enumerate()
            .filter(|&(i, &source)| i == source)
            .flat_map(|(i, _)| kinds.iter().map(move |w| (i, w.clone())))
            .collect();
        let measured: HashMap<(usize, BeKind), f64> = parallel_map(&probes, |(cell, w)| {
            let (_, _, lc, config) = &cells[*cell];
            let probed = characterize_cell(lc, w, Self::PROBE_LOAD, config, colo);
            ((*cell, w.kind()), (probed.normalized_latency - 1.0).max(0.0))
        })
        .into_iter()
        .collect();
        let hostility = source_of
            .iter()
            .enumerate()
            .flat_map(|(i, &source)| {
                let measured = &measured;
                let (gen, service, _, _) = cells[i];
                kinds.iter().map(move |w| ((gen, service, w.kind()), measured[&(source, w.kind())]))
            })
            .collect();
        InterferenceModel { hostility, by_generation: HashMap::new(), uniform: HashMap::new() }
    }

    /// A model built from explicit generation- and service-independent
    /// scores (used by tests and callers that already have
    /// characterization data).
    pub fn from_scores(scores: impl IntoIterator<Item = (BeKind, f64)>) -> Self {
        InterferenceModel {
            hostility: HashMap::new(),
            by_generation: HashMap::new(),
            uniform: scores.into_iter().collect(),
        }
    }

    /// A model built from explicit per-(generation, kind) scores — for
    /// tests and callers carrying external service-agnostic
    /// characterization data (e.g. the autoscaler's generation market).
    pub fn from_generation_scores(
        scores: impl IntoIterator<Item = ((usize, BeKind), f64)>,
    ) -> Self {
        InterferenceModel {
            hostility: HashMap::new(),
            by_generation: scores.into_iter().collect(),
            uniform: HashMap::new(),
        }
    }

    /// A model built from explicit per-(generation, service, kind) cell
    /// scores — the full key, for tests pinning mixed-service behaviour.
    pub fn from_cell_scores(
        scores: impl IntoIterator<Item = ((usize, LcKind, BeKind), f64)>,
    ) -> Self {
        InterferenceModel {
            hostility: scores.into_iter().collect(),
            by_generation: HashMap::new(),
            uniform: HashMap::new(),
        }
    }

    /// The hostility score of a BE kind on a given (hardware generation,
    /// LC service) cell.  Unmeasured cells fall back to the
    /// service-agnostic per-generation scores, then to the uniform scores,
    /// then to a cautious middle-of-the-road 0.5 rather than zero.
    pub fn hostility(&self, generation: usize, service: LcKind, kind: BeKind) -> f64 {
        self.hostility
            .get(&(generation, service, kind))
            .or_else(|| self.by_generation.get(&(generation, kind)))
            .or_else(|| self.uniform.get(&kind))
            .copied()
            .unwrap_or(0.5)
    }
}

/// Interference-characterization-guided placement.
///
/// Raw hostility scores span orders of magnitude (an unmanaged stream-DRAM
/// antagonist inflates websearch's tail by ~300×, brain by ~1.5×), so the
/// policy works on the saturating *pressure* `h / (1 + h)` in `[0, 1)`.
/// Mildly hostile jobs (brain) merely prefer emptier servers — a per-server
/// Heracles controller contains them fine; extreme antagonists
/// (stream-DRAM, streetview) are steered away from services near their
/// latency knee, where the controller could only protect the SLO by
/// disabling them and wasting the placement.
#[derive(Debug, Clone)]
pub struct InterferenceAware {
    model: InterferenceModel,
    /// LC load beyond which a service is considered near its latency knee.
    knee_load: f64,
    /// Steps ahead the policy projects a server's load trend when judging
    /// knee proximity.  A placement is an investment — the controller ramps
    /// the BE share from one core — so what matters is where the server's
    /// diurnal trajectory will be while the ramp amortises, not where it is
    /// now.
    trend_horizon: f64,
    /// The active round's lazy score heaps, one per distinct job profile.
    /// Two jobs score identically iff they share a workload kind *and*
    /// memory intensity (custom workloads can differ in intensity within a
    /// kind), so the key carries both; heaps are built on a profile's
    /// first job of the round.
    round: Option<HashMap<(BeKind, u64), BinaryHeap<HeapEntry>>>,
}

/// Weight of the DRAM-bandwidth affinity factor: the fractional headroom
/// bonus a fully memory-bound job sees on a generation with twice the
/// reference bandwidth (and the matching malus below it).
const DRAM_AFFINITY_WEIGHT: f64 = 0.4;

impl InterferenceAware {
    /// Creates the policy from a measured interference model.
    pub fn new(model: InterferenceModel) -> Self {
        InterferenceAware { model, knee_load: 0.70, trend_horizon: 8.0, round: None }
    }

    /// The interference model the policy consults.
    pub fn model(&self) -> &InterferenceModel {
        &self.model
    }

    /// How desirable `server` is for `job` (higher is better).
    fn score(&self, job: &BeJob, server: &ServerEntry) -> f64 {
        Self::score_at(
            &self.model,
            self.knee_load,
            self.trend_horizon,
            job,
            server,
            server.resident.len(),
        )
    }

    /// [`score`](Self::score) at an explicit resident count — the round
    /// plans re-score winners at `residents + 1` before their placements
    /// commit.  Free-standing over the model so a `place` call can borrow
    /// the round heaps mutably at the same time.  Strictly decreasing in
    /// `residents` (the crowd divisor only grows), which is what makes the
    /// lazy heap's stale entries safe upper bounds.
    fn score_at(
        model: &InterferenceModel,
        knee_load: f64,
        trend_horizon: f64,
        job: &BeJob,
        server: &ServerEntry,
        residents: usize,
    ) -> f64 {
        // The base currency is marginal headroom in absolute cores — what
        // the job would actually get to grow into — computed against the
        // *projected* load: a placement is an investment (the controller
        // ramps the BE share from one core), so what matters is where the
        // server's diurnal trajectory will be while the ramp amortises.
        //
        // Sharing a server is much cheaper with a job of the same kind: the
        // newcomer rides the already-grown BE allocation and inherits it
        // seamlessly when the incumbent finishes, instead of forcing a
        // conservative controller restart — so kind-affinity discounts the
        // effective crowd.
        //
        // The headroom is then shaded by interference: hostility is the
        // *generation's* measured score (the same antagonist can saturate a
        // low-bandwidth older box and leave a newer one healthy), and
        // pairing a hostile job with a near-knee service — or any job with
        // a server projected past the controller's re-enable threshold (a
        // looming disable, hence a wasted ramp) — divides the value away.
        // DRAM-hungry jobs additionally prefer high-bandwidth generations,
        // where their progress is not bandwidth-capped and their contention
        // hurts the colocated LC service least.  These are soft
        // preferences, not gates: with every server defended by its own
        // Heracles controller, a mediocre placement still beats holding the
        // job at zero progress.
        let kind = job.workload.kind();
        let hostility = model.hostility(server.generation, server.service, kind);
        let pressure = hostility / (1.0 + hostility);
        let projected = server.projected_load(trend_horizon);
        let crowd = if server.attached_kind == Some(kind) {
            SAME_KIND_OCCUPANCY_DISCOUNT * residents as f64
        } else {
            residents as f64
        };
        let headroom = marginal_headroom_cores(server, projected, crowd);
        let knee_penalty = pressure * (projected - knee_load).max(0.0) * 4.0
            + (projected - crate::store::ADMISSION_LOAD_DISABLE).max(0.0) * 10.0;
        let bandwidth_ratio = server.dram_peak_gbps / REFERENCE_DRAM_GBPS;
        let dram_affinity =
            1.0 + DRAM_AFFINITY_WEIGHT * job.workload.memory_intensity() * (bandwidth_ratio - 1.0);
        headroom * dram_affinity.max(0.1) / (1.0 + knee_penalty)
    }
}

impl PlacementPolicy for InterferenceAware {
    fn name(&self) -> &str {
        "interference-aware"
    }

    fn begin_round(&mut self, _store: &PlacementStore) {
        // Heaps are profile-keyed and built lazily on each profile's first
        // job, so there is nothing to precompute until jobs arrive.
        self.round = Some(HashMap::new());
    }

    fn round_candidates(&self) -> Option<usize> {
        self.round.as_ref().map(|r| r.values().map(|h| h.len()).sum())
    }

    fn place(
        &mut self,
        job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        let model = &self.model;
        let (knee_load, trend_horizon) = (self.knee_load, self.trend_horizon);
        let score = |server: &ServerEntry, residents: usize| {
            Self::score_at(model, knee_load, trend_horizon, job, server, residents)
        };
        if let Some(round) = self.round.as_mut() {
            let key = (job.workload.kind(), job.workload.memory_intensity().to_bits());
            let heap = round.entry(key).or_insert_with(|| scored_candidates(store, &score));
            return pop_best(heap, store, &score);
        }
        store
            .servers()
            .iter()
            .filter(|s| s.admits_be())
            .max_by(|a, b| {
                self.score(job, a)
                    .partial_cmp(&self.score(job, b))
                    .expect("scores are finite")
                    .then(b.id.cmp(&a.id))
            })
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ServerCapacity;
    use heracles_sim::SimTime;
    use heracles_workloads::BeWorkload;

    fn job_of(workload: BeWorkload) -> BeJob {
        BeJob {
            id: 0,
            workload,
            demand_core_s: 100.0,
            remaining_core_s: 100.0,
            arrival: SimTime::ZERO,
            first_start: None,
            completion: None,
            preemptions: 0,
            migrations: 0,
            migration_overhead_core_s: 0.0,
        }
    }

    /// A store with three servers at loads 0.7 / 0.3 / 0.5, all healthy.
    fn store() -> PlacementStore {
        let mut store = PlacementStore::new(3, 1);
        for (id, load) in [(0, 0.7), (1, 0.3), (2, 0.5)] {
            store.set_load(id, load);
            store.observe(id, SimTime::from_secs(1), 0.4, load, 0.0, true);
        }
        store
    }

    #[test]
    fn policy_kind_round_trips_names() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("nonsense".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn random_uses_any_admitted_free_slot_even_unhealthy() {
        let mut store = store();
        // Server 0: terrible slack but BE still enabled — Random doesn't
        // care about slack, so it stays a candidate.
        store.observe(0, SimTime::from_secs(2), -0.5, 0.7, 0.0, true);
        let mut rng = SimRng::new(1);
        let mut hits = [0usize; 3];
        for _ in 0..300 {
            let s = RandomPlacement::default()
                .place(&job_of(BeWorkload::brain()), &store, &mut rng)
                .expect("slots are free");
            hits[s] += 1;
        }
        assert!(hits.iter().all(|&h| h > 50), "{hits:?}");

        // But a controller that has *disabled* BE takes its server out of
        // the draw: a job placed there cannot run at all.
        store.observe(0, SimTime::from_secs(3), 0.5, 0.7, 0.0, false);
        for _ in 0..100 {
            let s = RandomPlacement::default()
                .place(&job_of(BeWorkload::brain()), &store, &mut rng)
                .expect("servers 1 and 2 admit");
            assert_ne!(s, 0, "random placed onto a BE-disabled server");
        }
    }

    #[test]
    fn no_policy_targets_a_draining_server() {
        let mut store = store();
        // Server 1 is the most attractive (emptiest) — but it is draining.
        store.begin_drain(1);
        let mut rng = SimRng::new(1);
        let job = job_of(BeWorkload::brain());
        for _ in 0..50 {
            assert_ne!(RandomPlacement::default().place(&job, &store, &mut rng), Some(1));
        }
        assert_eq!(FirstFit::default().place(&job, &store, &mut rng), Some(0));
        assert_eq!(LeastLoaded::default().place(&job, &store, &mut rng), Some(2));
        let mut aware = InterferenceAware::new(InterferenceModel::from_scores([]));
        assert_ne!(aware.place(&job, &store, &mut rng), Some(1));
    }

    #[test]
    fn first_fit_takes_the_lowest_admitting_server() {
        let mut store = store();
        let mut rng = SimRng::new(1);
        assert_eq!(
            FirstFit::default().place(&job_of(BeWorkload::brain()), &store, &mut rng),
            Some(0)
        );
        // Server 0 loses its slack entirely: first fit moves on to server 1.
        store.observe(0, SimTime::from_secs(2), -0.05, 0.7, 0.0, true);
        assert_eq!(
            FirstFit::default().place(&job_of(BeWorkload::brain()), &store, &mut rng),
            Some(1)
        );
        // Fill every slot: nothing fits.
        store.place(10, 1);
        store.place(11, 2);
        assert_eq!(FirstFit::default().place(&job_of(BeWorkload::brain()), &store, &mut rng), None);
    }

    #[test]
    fn least_loaded_picks_the_emptiest_admitting_server() {
        let store = store();
        let mut rng = SimRng::new(1);
        assert_eq!(
            LeastLoaded::default().place(&job_of(BeWorkload::brain()), &store, &mut rng),
            Some(1)
        );
    }

    #[test]
    fn interference_aware_steers_hostile_jobs_away_from_near_knee_servers() {
        let mut rng = SimRng::new(1);
        let model =
            InterferenceModel::from_scores([(BeKind::StreamDram, 50.0), (BeKind::LlcSmall, 0.0)]);
        let mut policy = InterferenceAware::new(model);
        // The hostile job goes to the emptiest server of the 0.7/0.3/0.5
        // fleet.
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &store(), &mut rng), Some(1));

        // Two servers: a near-knee empty one (0.79) vs a moderately loaded
        // one (0.40) already hosting two jobs.  A benign job takes the
        // empty near-knee server (more marginal headroom); the hostile
        // antagonist accepts sharing the calm server instead of sitting
        // next to a near-knee LC service.
        let slots = ServerCapacity::reference(3);
        let mut divided = PlacementStore::heterogeneous(&[slots, slots]);
        for (id, load) in [(0, 0.79), (1, 0.40)] {
            divided.set_load(id, load);
            divided.observe(id, SimTime::from_secs(1), 0.4, load, 0.0, true);
        }
        divided.place(20, 1);
        divided.place(21, 1);
        assert_eq!(policy.place(&job_of(BeWorkload::llc_small()), &divided, &mut rng), Some(0));
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &divided, &mut rng), Some(1));

        // The policy never holds a placeable job: when only the near-knee
        // server has a slot, even the antagonist goes there.
        divided.place(22, 1);
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &divided, &mut rng), Some(0));
    }

    #[test]
    fn characterized_model_ranks_dram_streaming_above_small_llc() {
        let model = InterferenceModel::characterize(
            &[BeWorkload::stream_dram(), BeWorkload::llc_small()],
            &[(0, LcKind::Websearch, LcWorkload::websearch(), ServerConfig::default_haswell())],
            &ColoConfig::fast_test(),
        );
        let dram = model.hostility(0, LcKind::Websearch, BeKind::StreamDram);
        let small = model.hostility(0, LcKind::Websearch, BeKind::LlcSmall);
        assert!(dram > 0.5, "stream-DRAM hostility {dram:.2}");
        assert!(dram > small, "dram {dram:.2} <= llc_small {small:.2}");
        // Unknown kinds, unmeasured generations and unmeasured services all
        // get the cautious default.
        assert_eq!(model.hostility(0, LcKind::Websearch, BeKind::Iperf), 0.5);
        assert_eq!(model.hostility(7, LcKind::Websearch, BeKind::Iperf), 0.5);
        assert_eq!(model.hostility(0, LcKind::Memkeyval, BeKind::StreamDram), 0.5);
    }

    #[test]
    fn characterization_is_cached_per_distinct_config() {
        let ws = LcWorkload::websearch();
        let haswell = ServerConfig::default_haswell();
        // Three cells, two of them identical (workload, hardware) pairs:
        // the duplicates must share one measurement exactly.
        let model = InterferenceModel::characterize(
            &[BeWorkload::stream_dram()],
            &[
                (0, LcKind::Websearch, ws.clone(), haswell.clone()),
                (1, LcKind::Websearch, ws.scaled_to_capacity(0.5), ServerConfig::small_test()),
                (2, LcKind::Websearch, ws.clone(), haswell.clone()),
            ],
            &ColoConfig::fast_test(),
        );
        assert_eq!(
            model.hostility(0, LcKind::Websearch, BeKind::StreamDram),
            model.hostility(2, LcKind::Websearch, BeKind::StreamDram),
            "duplicate configs did not share the cached cell"
        );
        // The smaller, lower-bandwidth box sees a different (not cached)
        // score than the Haswell.
        assert_ne!(
            model.hostility(0, LcKind::Websearch, BeKind::StreamDram),
            model.hostility(1, LcKind::Websearch, BeKind::StreamDram)
        );
    }

    #[test]
    fn iperf_is_hostile_to_memkeyval_but_tolerable_next_to_ml_cluster() {
        // The service axis of the interference key: an iperf-style network
        // streamer saturates the NIC that a network-bound memkeyval leaf
        // lives on, while ml_cluster (tiny responses) barely notices.
        let model = InterferenceModel::characterize(
            &[BeWorkload::iperf()],
            &[
                (1, LcKind::Memkeyval, LcWorkload::memkeyval(), ServerConfig::default_haswell()),
                (1, LcKind::MlCluster, LcWorkload::ml_cluster(), ServerConfig::default_haswell()),
            ],
            &ColoConfig::fast_test(),
        );
        let kv = model.hostility(1, LcKind::Memkeyval, BeKind::Iperf);
        let ml = model.hostility(1, LcKind::MlCluster, BeKind::Iperf);
        assert!(kv > ml, "iperf on memkeyval {kv:.2} <= on ml_cluster {ml:.2}");
        assert!(kv > 0.5, "iperf barely dented memkeyval ({kv:.2})");
    }

    #[test]
    fn dram_hungry_jobs_prefer_high_bandwidth_generations() {
        let mut rng = SimRng::new(1);
        let model = InterferenceModel::from_scores([(BeKind::Streetview, 5.0)]);
        let mut policy = InterferenceAware::new(model);
        // Two servers with identical core counts and loads, differing only
        // in DRAM bandwidth, so the bandwidth-affinity factor is the only
        // discriminator.
        let slow = ServerCapacity {
            cores: 36,
            dram_peak_gbps: 80.0,
            be_slots: 2,
            generation: 0,
            service: LcKind::Websearch,
            peak_qps: 2_900.0,
        };
        let fast = ServerCapacity {
            cores: 36,
            dram_peak_gbps: 200.0,
            be_slots: 2,
            generation: 2,
            service: LcKind::Websearch,
            peak_qps: 2_900.0,
        };
        let mut store = PlacementStore::heterogeneous(&[slow, fast]);
        for id in 0..2 {
            store.set_load(id, 0.4);
            store.observe(id, SimTime::from_secs(1), 0.5, 0.4, 0.0, true);
        }
        // streetview hammers DRAM: it goes to the high-bandwidth box.
        assert_eq!(policy.place(&job_of(BeWorkload::streetview()), &store, &mut rng), Some(1));
        // A job with zero memory intensity has no bandwidth preference; the
        // tie breaks by id to the first admitting server.
        assert_eq!(policy.place(&job_of(BeWorkload::spinloop()), &store, &mut rng), Some(0));
    }

    /// A five-server store mixing generations, loads, slacks, verdicts,
    /// lifecycle states and prior occupancy — enough structure that every
    /// policy's plan has winners, losers, staleness and exhaustion to get
    /// right.
    fn churned_store() -> PlacementStore {
        let caps = [
            ServerCapacity::from_config(&ServerConfig::older_sandy_bridge(), 3, 0),
            ServerCapacity::from_config(&ServerConfig::default_haswell(), 3, 1),
            ServerCapacity::from_config(&ServerConfig::newer_skylake(), 3, 2),
            ServerCapacity::reference(2),
            ServerCapacity::reference(2),
        ];
        let mut store = PlacementStore::heterogeneous(&caps);
        for (id, load, slack, admitted) in [
            (0, 0.72, 0.05, true),
            (1, 0.30, 0.40, true),
            (2, 0.55, 0.20, true),
            (3, 0.10, 0.80, false),
            (4, 0.40, 0.30, true),
        ] {
            store.set_load(id, load);
            store.observe(id, SimTime::from_secs(1), slack, load, 0.1, admitted);
        }
        store.begin_drain(4);
        store.place(90, 1);
        store.set_attached_kind(1, Some(BeKind::Brain));
        store
    }

    #[test]
    fn round_plans_match_the_per_job_scans() {
        let model = InterferenceModel::from_scores([
            (BeKind::Brain, 1.5),
            (BeKind::StreamDram, 290.0),
            (BeKind::Streetview, 50.0),
            (BeKind::LlcSmall, 0.1),
        ]);
        let fresh: Vec<Box<dyn Fn() -> Box<dyn PlacementPolicy>>> = vec![
            Box::new(|| Box::new(RandomPlacement::default())),
            Box::new(|| Box::new(FirstFit::default())),
            Box::new(|| Box::new(LeastLoaded::default())),
            Box::new(move || Box::new(InterferenceAware::new(model.clone()))),
        ];
        let workloads = [
            BeWorkload::brain(),
            BeWorkload::stream_dram(),
            BeWorkload::llc_small(),
            BeWorkload::streetview(),
            BeWorkload::brain(),
            BeWorkload::iperf(),
            BeWorkload::stream_dram(),
            BeWorkload::llc_medium(),
            BeWorkload::brain(),
            BeWorkload::spinloop(),
        ];
        for seed in 0..10u64 {
            for make in &fresh {
                let run = |batched: bool| {
                    let mut policy = make();
                    let mut store = churned_store();
                    let mut rng = SimRng::new(seed);
                    if batched {
                        policy.begin_round(&store);
                    }
                    let mut picks = Vec::new();
                    for (i, w) in workloads.iter().enumerate() {
                        let mut job = job_of(w.clone());
                        job.id = 100 + i;
                        let pick = policy.place(&job, &store, &mut rng);
                        if let Some(server) = pick {
                            store.place(job.id, server);
                        }
                        picks.push(pick);
                    }
                    picks
                };
                let scanned = run(false);
                let planned = run(true);
                assert_eq!(
                    scanned,
                    planned,
                    "round plan diverged from per-job scans for {} (seed {seed})",
                    make().name()
                );
            }
        }
    }

    #[test]
    fn a_new_round_rebuilds_the_plan_against_fresh_state() {
        let mut policy = LeastLoaded::default();
        let mut store = churned_store();
        let mut rng = SimRng::new(3);
        policy.begin_round(&store);
        let job = job_of(BeWorkload::brain());
        let first = policy.place(&job, &store, &mut rng).expect("servers admit");
        store.place(200, first);
        // Between rounds the world changes: the previous winner's load
        // spikes past admission and a prior loser recovers.
        store.set_load(first, 0.95);
        store.observe(first, SimTime::from_secs(2), 0.01, 0.95, 0.0, true);
        store.set_load(3, 0.10);
        store.observe(3, SimTime::from_secs(2), 0.85, 0.10, 0.2, true);
        policy.begin_round(&store);
        let second = policy.place(&job, &store, &mut rng).expect("server 3 admits");
        assert_ne!(second, first, "stale plan survived into the next round");
        assert_eq!(second, 3);
    }

    #[test]
    fn least_loaded_ranks_by_absolute_headroom_not_load_fraction() {
        let mut rng = SimRng::new(1);
        let small = ServerCapacity {
            cores: 16,
            dram_peak_gbps: 80.0,
            be_slots: 3,
            generation: 0,
            service: LcKind::Websearch,
            peak_qps: 1_290.0,
        };
        let big = ServerCapacity {
            cores: 48,
            dram_peak_gbps: 200.0,
            be_slots: 3,
            generation: 2,
            service: LcKind::Websearch,
            peak_qps: 3_870.0,
        };
        let mut store = PlacementStore::heterogeneous(&[small, big]);
        store.set_load(0, 0.30);
        store.set_load(1, 0.40);
        for id in 0..2 {
            store.observe(id, SimTime::from_secs(1), 0.5, 0.3, 0.0, true);
        }
        // Load-fraction thinking would pick the 30%-loaded small box; in
        // absolute terms the 40%-loaded big box offers 28.8 free cores
        // against 11.2.
        assert_eq!(
            LeastLoaded::default().place(&job_of(BeWorkload::brain()), &store, &mut rng),
            Some(1)
        );
        // Crowding shrinks the big box's marginal share: with two residents
        // it offers 28.8/3 = 9.6 cores, so the empty small box (11.2) wins.
        store.place(40, 1);
        store.place(41, 1);
        assert_eq!(
            LeastLoaded::default().place(&job_of(BeWorkload::brain()), &store, &mut rng),
            Some(0)
        );
    }
}
