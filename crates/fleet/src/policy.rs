//! Pluggable BE job placement policies.
//!
//! All four policies see the same [`PlacementStore`] table; they differ in
//! how much of it they use:
//!
//! * [`RandomPlacement`] — any server with a free slot, chosen uniformly.
//!   The naive baseline: it ignores the controllers entirely, so it keeps
//!   feeding jobs to servers whose Heracles instance is about to squeeze
//!   them back out.
//! * [`FirstFit`] — the lowest-numbered server where the job *fits*, where
//!   fitting means a free slot on a server healthy enough to admit BE work
//!   (positive latency slack, per [`ServerEntry::admits_be`]).  This is the
//!   classic packing heuristic of cluster placement stores, with the
//!   admission verdict standing in for the capacity check.
//! * [`LeastLoaded`] — among admitting servers, the one with the lowest
//!   current LC load (most headroom for the sub-controllers to grow the BE
//!   share).
//! * [`InterferenceAware`] — additionally consults the §3.2 interference
//!   characterization and the store's load trend: a job whose workload
//!   devastates a near-knee LC service (stream-DRAM, streetview, …) is
//!   steered onto servers far from their latency knee (and projected to
//!   stay there), benign jobs fill moderately loaded servers, and
//!   same-kind jobs are chained onto one server so a successor inherits
//!   the grown BE allocation without a conservative controller restart.

use std::collections::HashMap;

use heracles_colo::characterize::characterize_cell;
use heracles_colo::ColoConfig;
use heracles_hw::ServerConfig;
use heracles_sim::{parallel_map, SimRng};
use heracles_workloads::{BeKind, BeWorkload, LcWorkload};

use crate::job::BeJob;
use crate::store::{PlacementStore, ServerId};

/// A fleet-level policy deciding which server hosts a BE job.
///
/// Implementations must only return servers with a free BE slot (the store
/// panics on oversubscription); returning `None` leaves the job queued for
/// the next dispatch round.
pub trait PlacementPolicy: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Chooses a server for `job`, or `None` to leave it queued.
    fn place(&mut self, job: &BeJob, store: &PlacementStore, rng: &mut SimRng) -> Option<ServerId>;
}

/// The built-in placement policies, in the order the sweeps report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Uniform over servers with a free slot.
    Random,
    /// Lowest-numbered admitting server.
    FirstFit,
    /// Admitting server with the lowest LC load.
    LeastLoaded,
    /// Interference-characterization-guided placement.
    InterferenceAware,
}

impl PolicyKind {
    /// All built-in policies, in reporting order.
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::Random,
            PolicyKind::FirstFit,
            PolicyKind::LeastLoaded,
            PolicyKind::InterferenceAware,
        ]
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Random => "random",
            PolicyKind::FirstFit => "first-fit",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::InterferenceAware => "interference-aware",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(PolicyKind::Random),
            "first-fit" => Ok(PolicyKind::FirstFit),
            "least-loaded" => Ok(PolicyKind::LeastLoaded),
            "interference-aware" => Ok(PolicyKind::InterferenceAware),
            other => Err(format!(
                "unknown policy {other:?} (expected random, first-fit, least-loaded or interference-aware)"
            )),
        }
    }
}

/// Uniform choice over servers with a free slot.
#[derive(Debug, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &str {
        "random"
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        rng: &mut SimRng,
    ) -> Option<ServerId> {
        let candidates: Vec<ServerId> =
            store.servers().iter().filter(|s| s.has_free_slot()).map(|s| s.id).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.index(candidates.len())])
        }
    }
}

/// Lowest-numbered server where the job fits (free slot + admission).
#[derive(Debug, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &str {
        "first-fit"
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        store.servers().iter().find(|s| s.admits_be()).map(|s| s.id)
    }
}

/// Admitting server with the lowest effective load: current LC load plus a
/// penalty per already-resident BE job.
///
/// The occupancy penalty matters because resident jobs share their server's
/// BE slice — the marginal throughput of a second job on an occupied server
/// is far below that of a first job on an empty one, so the policy fills
/// empty servers before doubling up.
#[derive(Debug, Default)]
pub struct LeastLoaded;

/// Effective-load penalty per resident BE job (shared by [`LeastLoaded`] and
/// [`InterferenceAware`]): a resident job claims about as much of the
/// server's headroom as a fully loaded LC service would.
const OCCUPANCY_PENALTY: f64 = 0.75;

/// [`InterferenceAware`]'s reduced occupancy penalty when the incumbent BE
/// workload is of the same kind as the job being placed (kind-affinity: the
/// newcomer shares, then inherits, the grown allocation with no controller
/// restart).
const SAME_KIND_OCCUPANCY_PENALTY: f64 = 0.25;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn place(
        &mut self,
        _job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        store
            .servers()
            .iter()
            .filter(|s| s.admits_be())
            .min_by(|a, b| {
                let load_a = a.lc_load + OCCUPANCY_PENALTY * a.resident.len() as f64;
                let load_b = b.lc_load + OCCUPANCY_PENALTY * b.resident.len() as f64;
                load_a.partial_cmp(&load_b).expect("loads are finite").then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }
}

/// How hostile each BE workload is to a colocated LC service, measured from
/// the paper's §3.2 interference characterization (Figure 1).
///
/// Each workload is run as an antagonist against the LC workload at 20%
/// load with the characterization's fixed layouts; the amount by which the
/// resulting tail latency overshoots the SLO is the hostility score (0 for
/// workloads that leave the SLO intact, ~1+ for DRAM streaming).  Low load
/// is where Figure 1 separates the antagonists most sharply — the
/// antagonist holds most of the machine, so the damage it can do is fully
/// expressed.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceModel {
    hostility: HashMap<BeKind, f64>,
}

impl InterferenceModel {
    /// Load at which the characterization cells are measured.
    const PROBE_LOAD: f64 = 0.2;

    /// Measures hostility scores for `kinds` against `lc` by running the
    /// characterization cells (in parallel — they are independent).
    pub fn characterize(
        kinds: &[BeWorkload],
        lc: &LcWorkload,
        server: &ServerConfig,
        colo: &ColoConfig,
    ) -> Self {
        let cells = parallel_map(kinds, |w| {
            (w.kind(), characterize_cell(lc, w, Self::PROBE_LOAD, server, colo))
        });
        let hostility = cells
            .into_iter()
            .map(|(kind, cell)| (kind, (cell.normalized_latency - 1.0).max(0.0)))
            .collect();
        InterferenceModel { hostility }
    }

    /// A model built from explicit scores (used by tests and callers that
    /// already have characterization data).
    pub fn from_scores(scores: impl IntoIterator<Item = (BeKind, f64)>) -> Self {
        InterferenceModel { hostility: scores.into_iter().collect() }
    }

    /// The hostility score of a BE kind.  Unknown kinds get a cautious
    /// middle-of-the-road score rather than zero.
    pub fn hostility(&self, kind: BeKind) -> f64 {
        self.hostility.get(&kind).copied().unwrap_or(0.5)
    }
}

/// Interference-characterization-guided placement.
///
/// Raw hostility scores span orders of magnitude (an unmanaged stream-DRAM
/// antagonist inflates websearch's tail by ~300×, brain by ~1.5×), so the
/// policy works on the saturating *pressure* `h / (1 + h)` in `[0, 1)`.
/// Mildly hostile jobs (brain) merely prefer emptier servers — a per-server
/// Heracles controller contains them fine; extreme antagonists
/// (stream-DRAM, streetview) are steered away from services near their
/// latency knee, where the controller could only protect the SLO by
/// disabling them and wasting the placement.
#[derive(Debug, Clone)]
pub struct InterferenceAware {
    model: InterferenceModel,
    /// LC load beyond which a service is considered near its latency knee.
    knee_load: f64,
    /// Steps ahead the policy projects a server's load trend when judging
    /// knee proximity.  A placement is an investment — the controller ramps
    /// the BE share from one core — so what matters is where the server's
    /// diurnal trajectory will be while the ramp amortises, not where it is
    /// now.
    trend_horizon: f64,
}

impl InterferenceAware {
    /// Creates the policy from a measured interference model.
    pub fn new(model: InterferenceModel) -> Self {
        InterferenceAware { model, knee_load: 0.70, trend_horizon: 8.0 }
    }

    /// The interference model the policy consults.
    pub fn model(&self) -> &InterferenceModel {
        &self.model
    }

    fn score(&self, pressure: f64, kind: BeKind, server: &crate::store::ServerEntry) -> f64 {
        // Prefer empty, lightly loaded servers whose load is not climbing;
        // punish pairing hostility with a near-knee service super-linearly
        // so hostile jobs sort onto the emptiest servers while benign jobs
        // fill the middle of the fleet, and sort servers projected past the
        // controller's re-enable threshold (a looming disable, hence a
        // wasted ramp) last for every job.  These are soft preferences, not
        // gates: with every server defended by its own Heracles controller,
        // a mediocre placement still beats holding the job at zero progress.
        //
        // Sharing a server is much cheaper with a job of the same kind: the
        // newcomer rides the already-grown BE allocation and inherits it
        // seamlessly when the incumbent finishes, instead of forcing a
        // conservative controller restart — so kind-affinity discounts the
        // occupancy penalty.
        let occupancy = if server.attached_kind == Some(kind) {
            SAME_KIND_OCCUPANCY_PENALTY
        } else {
            OCCUPANCY_PENALTY
        };
        let projected = server.projected_load(self.trend_horizon);
        projected
            + occupancy * server.resident.len() as f64
            + pressure * (projected - self.knee_load).max(0.0) * 4.0
            + (projected - crate::store::ADMISSION_LOAD_CEILING).max(0.0) * 10.0
    }
}

impl PlacementPolicy for InterferenceAware {
    fn name(&self) -> &str {
        "interference-aware"
    }

    fn place(
        &mut self,
        job: &BeJob,
        store: &PlacementStore,
        _rng: &mut SimRng,
    ) -> Option<ServerId> {
        let hostility = self.model.hostility(job.workload.kind());
        let pressure = hostility / (1.0 + hostility);
        store
            .servers()
            .iter()
            .filter(|s| s.admits_be())
            .min_by(|a, b| {
                self.score(pressure, job.workload.kind(), a)
                    .partial_cmp(&self.score(pressure, job.workload.kind(), b))
                    .expect("scores are finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_sim::SimTime;
    use heracles_workloads::BeWorkload;

    fn job_of(workload: BeWorkload) -> BeJob {
        BeJob {
            id: 0,
            workload,
            demand_core_s: 100.0,
            remaining_core_s: 100.0,
            arrival: SimTime::ZERO,
            first_start: None,
            completion: None,
            preemptions: 0,
        }
    }

    /// A store with three servers at loads 0.7 / 0.3 / 0.5, all healthy.
    fn store() -> PlacementStore {
        let mut store = PlacementStore::new(3, 1);
        for (id, load) in [(0, 0.7), (1, 0.3), (2, 0.5)] {
            store.set_load(id, load);
            store.observe(id, SimTime::from_secs(1), 0.4, load, 0.0, true);
        }
        store
    }

    #[test]
    fn policy_kind_round_trips_names() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("nonsense".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn random_uses_any_free_slot_even_unhealthy() {
        let mut store = store();
        store.observe(0, SimTime::from_secs(2), -0.5, 0.7, 0.0, false);
        let mut rng = SimRng::new(1);
        let mut hits = [0usize; 3];
        for _ in 0..300 {
            let s = RandomPlacement
                .place(&job_of(BeWorkload::brain()), &store, &mut rng)
                .expect("slots are free");
            hits[s] += 1;
        }
        // The unhealthy server 0 is still a candidate for Random.
        assert!(hits.iter().all(|&h| h > 50), "{hits:?}");
    }

    #[test]
    fn first_fit_takes_the_lowest_admitting_server() {
        let mut store = store();
        let mut rng = SimRng::new(1);
        assert_eq!(FirstFit.place(&job_of(BeWorkload::brain()), &store, &mut rng), Some(0));
        // Server 0 loses its slack: first fit moves on to server 1.
        store.observe(0, SimTime::from_secs(2), 0.01, 0.7, 0.0, true);
        assert_eq!(FirstFit.place(&job_of(BeWorkload::brain()), &store, &mut rng), Some(1));
        // Fill every slot: nothing fits.
        store.place(10, 1);
        store.place(11, 2);
        assert_eq!(FirstFit.place(&job_of(BeWorkload::brain()), &store, &mut rng), None);
    }

    #[test]
    fn least_loaded_picks_the_emptiest_admitting_server() {
        let store = store();
        let mut rng = SimRng::new(1);
        assert_eq!(LeastLoaded.place(&job_of(BeWorkload::brain()), &store, &mut rng), Some(1));
    }

    #[test]
    fn interference_aware_steers_hostile_jobs_away_from_near_knee_servers() {
        let mut rng = SimRng::new(1);
        let model =
            InterferenceModel::from_scores([(BeKind::StreamDram, 50.0), (BeKind::LlcSmall, 0.0)]);
        let mut policy = InterferenceAware::new(model);
        // The hostile job goes to the emptiest server of the 0.7/0.3/0.5
        // fleet.
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &store(), &mut rng), Some(1));

        // Two servers: a near-knee empty one (0.78) vs a lightly loaded one
        // already hosting a job (0.30).  A benign job takes the empty
        // near-knee server; a hostile antagonist accepts sharing the calm
        // server instead of sitting next to a near-knee LC service.
        let mut divided = PlacementStore::new(2, 2);
        for (id, load) in [(0, 0.78), (1, 0.30)] {
            divided.set_load(id, load);
            divided.observe(id, SimTime::from_secs(1), 0.4, load, 0.0, true);
        }
        divided.place(20, 1);
        assert_eq!(policy.place(&job_of(BeWorkload::llc_small()), &divided, &mut rng), Some(0));
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &divided, &mut rng), Some(1));

        // The policy never holds a placeable job: when only the near-knee
        // server has a slot, even the antagonist goes there.
        divided.place(21, 1);
        assert_eq!(policy.place(&job_of(BeWorkload::stream_dram()), &divided, &mut rng), Some(0));
    }

    #[test]
    fn characterized_model_ranks_dram_streaming_above_small_llc() {
        let model = InterferenceModel::characterize(
            &[BeWorkload::stream_dram(), BeWorkload::llc_small()],
            &LcWorkload::websearch(),
            &ServerConfig::default_haswell(),
            &ColoConfig::fast_test(),
        );
        let dram = model.hostility(BeKind::StreamDram);
        let small = model.hostility(BeKind::LlcSmall);
        assert!(dram > 0.5, "stream-DRAM hostility {dram:.2}");
        assert!(dram > small, "dram {dram:.2} <= llc_small {small:.2}");
        // Unknown kinds get the cautious default.
        assert_eq!(model.hostility(BeKind::Iperf), 0.5);
    }
}
