//! The best-effort job model and the fleet's arrival queue.
//!
//! A fleet run is driven by a stream of batch jobs: each job is an instance
//! of one of the paper's BE workloads with a total compute demand measured in
//! core·seconds (the unit the Effective Machine Utilization metric already
//! uses — one core·second is one nominal-frequency core busy for one
//! second).  Arrivals are Poisson per fleet step and demands are
//! bounded-Pareto, both drawn deterministically from the fleet seed, so two
//! runs with the same seed replay the identical job stream — which is what
//! lets the placement policies be compared head-to-head.

use std::collections::VecDeque;

use heracles_sim::{SimRng, SimTime};
use heracles_workloads::BeWorkload;
use serde::{Deserialize, Serialize};

/// Identifier of a job within one fleet run (dense, starting at 0).
pub type JobId = usize;

/// Which workload catalogue arriving jobs are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobMix {
    /// The production batch jobs of §5.1: brain and streetview.
    Production,
    /// The full single-server evaluation set of §5.1/§5.2 (stream-LLC,
    /// stream-DRAM, cpu_pwr, brain, streetview, iperf).
    Evaluation,
}

impl JobMix {
    /// The workloads jobs of this mix are drawn from (uniformly).
    pub fn workloads(self) -> Vec<BeWorkload> {
        match self {
            JobMix::Production => BeWorkload::production_set(),
            JobMix::Evaluation => BeWorkload::evaluation_set(),
        }
    }
}

/// Parameters of the seeded job arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobStreamConfig {
    /// Mean number of job arrivals per fleet step (Poisson).
    pub arrivals_per_step: f64,
    /// Pareto shape of the per-job demand distribution (batch job sizes are
    /// heavy-tailed).
    pub demand_alpha: f64,
    /// Smallest job demand, in core·seconds.
    pub demand_min_core_s: f64,
    /// Largest job demand, in core·seconds.
    pub demand_max_core_s: f64,
    /// Which workload catalogue jobs are drawn from.
    pub mix: JobMix,
}

impl Default for JobStreamConfig {
    fn default() -> Self {
        JobStreamConfig {
            arrivals_per_step: 1.0,
            demand_alpha: 1.5,
            demand_min_core_s: 150.0,
            demand_max_core_s: 2_000.0,
            mix: JobMix::Production,
        }
    }
}

/// One best-effort job and its lifecycle bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeJob {
    /// The job's identifier.
    pub id: JobId,
    /// The workload profile the job runs.
    pub workload: BeWorkload,
    /// Total compute demand, in core·seconds.
    pub demand_core_s: f64,
    /// Demand not yet served, in core·seconds.
    pub remaining_core_s: f64,
    /// When the job entered the queue.
    pub arrival: SimTime,
    /// When the job was first placed on a server, if ever.
    pub first_start: Option<SimTime>,
    /// When the job finished, if it has.
    pub completion: Option<SimTime>,
    /// How many times the job was preempted and requeued.
    pub preemptions: usize,
    /// How many times the job was live-migrated between servers (scale-in
    /// drains move jobs without requeueing them).
    pub migrations: usize,
    /// Extra core·seconds added to the job's remaining demand by live
    /// migrations — the modeled cost of moving its state, paid on the
    /// destination.  `demand_core_s` itself is never touched by a
    /// migration, so `served == demand + overhead` for completed jobs.
    pub migration_overhead_core_s: f64,
}

impl BeJob {
    /// True once the job's whole demand has been served.
    pub fn is_complete(&self) -> bool {
        self.remaining_core_s <= 0.0
    }

    /// Seconds the job waited in the queue before it first ran, if it has
    /// started.
    pub fn queueing_delay_s(&self) -> Option<f64> {
        self.first_start.map(|s| s.saturating_since(self.arrival).as_secs_f64())
    }
}

/// The fleet's job queue: seeded fresh arrivals plus requeued (preempted)
/// jobs, dispatched FIFO with skipping — a job the policy cannot place stays
/// queued without blocking the jobs behind it.
#[derive(Debug)]
pub struct JobQueue {
    config: JobStreamConfig,
    catalogue: Vec<BeWorkload>,
    rng: SimRng,
    jobs: Vec<BeJob>,
    pending: VecDeque<JobId>,
}

impl JobQueue {
    /// Creates an empty queue whose arrival stream is a pure function of
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the demand bounds are not `0 < min <= max`.
    pub fn new(config: JobStreamConfig, seed: u64) -> Self {
        assert!(
            config.demand_min_core_s > 0.0 && config.demand_max_core_s >= config.demand_min_core_s,
            "job demand bounds must satisfy 0 < min <= max"
        );
        JobQueue {
            config,
            catalogue: config.mix.workloads(),
            rng: SimRng::new(seed).fork(0xB0B5),
            jobs: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    /// Samples this step's arrivals, appends them to the queue and returns
    /// their ids.
    pub fn arrive(&mut self, now: SimTime) -> Vec<JobId> {
        let count = self.rng.poisson(self.config.arrivals_per_step);
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = self.jobs.len();
            let workload = self.catalogue[self.rng.index(self.catalogue.len())].clone();
            let demand = self.rng.bounded_pareto(
                self.config.demand_alpha,
                self.config.demand_min_core_s,
                self.config.demand_max_core_s,
            );
            self.jobs.push(BeJob {
                id,
                workload,
                demand_core_s: demand,
                remaining_core_s: demand,
                arrival: now,
                first_start: None,
                completion: None,
                preemptions: 0,
                migrations: 0,
                migration_overhead_core_s: 0.0,
            });
            self.pending.push_back(id);
            ids.push(id);
        }
        ids
    }

    /// Takes the whole pending queue for one dispatch round (FIFO order).
    pub fn take_pending(&mut self) -> Vec<JobId> {
        self.pending.drain(..).collect()
    }

    /// Returns unplaced jobs to the queue, preserving their order ahead of
    /// jobs that arrive later.
    pub fn restore_pending(&mut self, ids: Vec<JobId>) {
        for id in ids.into_iter().rev() {
            self.pending.push_front(id);
        }
    }

    /// Requeues a preempted job at the front of the queue (it has already
    /// waited its turn once).
    pub fn requeue_front(&mut self, id: JobId) {
        self.jobs[id].preemptions += 1;
        self.pending.push_front(id);
    }

    /// Number of jobs currently waiting.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Ids of the jobs currently waiting, in dispatch order.
    pub fn pending_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.pending.iter().copied()
    }

    /// A job by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this queue.
    pub fn job(&self, id: JobId) -> &BeJob {
        &self.jobs[id]
    }

    /// A job by id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this queue.
    pub fn job_mut(&mut self, id: JobId) -> &mut BeJob {
        &mut self.jobs[id]
    }

    /// Every job the stream has produced so far, completed or not.
    pub fn jobs(&self) -> &[BeJob] {
        &self.jobs
    }

    /// Consumes the queue, returning all jobs (used to build the final
    /// result).
    pub fn into_jobs(self) -> Vec<BeJob> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> JobQueue {
        JobQueue::new(JobStreamConfig::default(), 7)
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let mut a = queue();
        let mut b = queue();
        let mut c = JobQueue::new(JobStreamConfig::default(), 8);
        let mut totals = (0, 0, 0);
        for step in 1..=50 {
            let now = SimTime::from_secs(step);
            totals.0 += a.arrive(now).len();
            totals.1 += b.arrive(now).len();
            totals.2 += c.arrive(now).len();
        }
        assert_eq!(totals.0, totals.1);
        assert_eq!(a.jobs().len(), b.jobs().len());
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja, jb);
        }
        // A different seed gives a different stream (with overwhelming
        // probability over 50 steps).
        assert!(
            totals.0 != totals.2
                || a.jobs().iter().zip(c.jobs()).any(|(x, y)| x.demand_core_s != y.demand_core_s)
        );
    }

    #[test]
    fn demands_respect_bounds_and_mix() {
        let mut q = queue();
        for step in 1..=100 {
            q.arrive(SimTime::from_secs(step));
        }
        assert!(!q.jobs().is_empty());
        let catalogue = JobMix::Production.workloads();
        let names: Vec<&str> = catalogue.iter().map(|w| w.name()).collect();
        for job in q.jobs() {
            assert!((150.0..=2_000.0).contains(&job.demand_core_s), "{}", job.demand_core_s);
            assert_eq!(job.remaining_core_s, job.demand_core_s);
            assert!(names.contains(&job.workload.name()), "{}", job.workload.name());
        }
    }

    #[test]
    fn pending_round_trip_preserves_fifo_order() {
        let mut q = queue();
        while q.jobs().len() < 3 {
            q.arrive(SimTime::from_secs(q.jobs().len() as u64 + 1));
        }
        let pending = q.take_pending();
        assert!(pending.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(q.pending_len(), 0);
        q.restore_pending(pending.clone());
        assert_eq!(q.take_pending(), pending);

        // A preempted job goes to the front.
        q.restore_pending(pending.clone());
        q.requeue_front(pending[2]);
        let order = q.take_pending();
        assert_eq!(order[0], pending[2]);
        assert_eq!(q.job(pending[2]).preemptions, 1);
    }

    #[test]
    fn queueing_delay_tracks_first_start() {
        let mut job = BeJob {
            id: 0,
            workload: BeWorkload::brain(),
            demand_core_s: 10.0,
            remaining_core_s: 0.0,
            arrival: SimTime::from_secs(5),
            first_start: None,
            completion: None,
            preemptions: 0,
            migrations: 0,
            migration_overhead_core_s: 0.0,
        };
        assert!(job.is_complete());
        assert_eq!(job.queueing_delay_s(), None);
        job.first_start = Some(SimTime::from_secs(9));
        assert_eq!(job.queueing_delay_s(), Some(4.0));
    }
}
