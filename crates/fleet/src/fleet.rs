//! The discrete-time fleet simulator.
//!
//! A fleet is N servers, each serving websearch under its own per-server
//! Heracles controller (a [`ColoRunner`] leaf, exactly the harness the
//! single-server experiments use), plus one fleet-level scheduler placing a
//! stream of BE jobs onto the servers' BE slots.  Load is diurnal with
//! per-server phase offsets, so at any moment the fleet spans the whole
//! load range — some servers are colocation-friendly, others are near their
//! latency knee.
//!
//! The fleet may mix hardware generations (a [`GenerationMix`]): each
//! generation runs its own [`ServerConfig`], serves a traffic share scaled
//! to its compute capacity (modelling a capacity-weighted front-end load
//! balancer, so a load fraction always means "fraction of what this box can
//! serve"), and exposes its core count and DRAM bandwidth to the placement
//! store.  Fleet-level EMU and the TCO comparison are core-weighted: a
//! 48-core box at 80% contributes three times the machine time of a 16-core
//! box at the same fraction.
//!
//! Each step the simulator:
//!
//! 1. samples every server's LC load from its phase-shifted diurnal trace,
//! 2. admits this step's job arrivals into the queue,
//! 3. dispatches queued jobs through the [`PlacementPolicy`] against the
//!    [`PlacementStore`],
//! 4. advances every server by `windows_per_step` measurement windows — in
//!    parallel across servers via [`parallel_map_mut`], since servers only
//!    interact through the scheduler between steps,
//! 5. credits BE progress to resident jobs, completes jobs whose demand is
//!    served, and preempts/requeues jobs whose server kept BE disabled
//!    beyond the grace period (the controller's verdict is final: Heracles
//!    defends the local SLO, the scheduler routes around it),
//! 6. refreshes the store with each server's slack, EMU and admission
//!    verdict.
//!
//! Everything is a pure function of the seed: the job stream, the traces,
//! every per-server RNG and the policy's tie-breaking all derive from it,
//! so identical seeds give identical schedules.

use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_sim::{parallel_map_mut, SimRng, SimTime};
use heracles_workloads::{BeWorkload, DiurnalTrace, LcWorkload};
use serde::{Deserialize, Serialize};

use crate::generation::{Generation, GenerationMix};
use crate::job::{JobQueue, JobStreamConfig};
use crate::metrics::{core_weighted_mean, FleetEvent, FleetEventKind, FleetResult, FleetStep};
use crate::policy::{
    FirstFit, InterferenceAware, InterferenceModel, LeastLoaded, PlacementPolicy, PolicyKind,
    RandomPlacement,
};
use crate::store::{PlacementStore, ServerCapacity, ServerId};

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers in the fleet.
    pub servers: usize,
    /// BE job slots per *reference-capacity* (Haswell, 36-core) server.
    /// Other generations scale this with their core count (rounded, floor
    /// of one): a 48-core box hosts proportionally more jobs, a 16-core box
    /// fewer.
    pub be_slots_per_server: usize,
    /// Number of scheduler steps to simulate.
    pub steps: usize,
    /// Measurement windows each server advances per step.
    pub windows_per_step: usize,
    /// Seed for the job stream, traces and every per-server random stream.
    pub seed: u64,
    /// Fraction of the diurnal period the per-server phase offsets span
    /// (1.0 spreads the fleet across the whole cycle; 0.0 moves every
    /// server in lockstep).
    pub load_spread: f64,
    /// The blend of hardware generations across the fleet (homogeneous by
    /// default: every server runs the baseline configuration).
    pub mix: GenerationMix,
    /// Steps a server may sit occupied with BE disabled before its jobs are
    /// preempted and requeued.
    pub preemption_grace_steps: usize,
    /// Per-server harness configuration.
    pub colo: ColoConfig,
    /// The job arrival process.
    pub jobs: JobStreamConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 50,
            be_slots_per_server: 2,
            steps: 144,
            windows_per_step: 4,
            seed: 42,
            load_spread: 1.0,
            mix: GenerationMix::homogeneous(),
            preemption_grace_steps: 2,
            colo: ColoConfig { requests_per_window: 1_200, ..ColoConfig::default() },
            jobs: JobStreamConfig { arrivals_per_step: 5.0, ..JobStreamConfig::default() },
        }
    }
}

impl FleetConfig {
    /// A scaled-down configuration for tests and `--fast` runs.
    ///
    /// The window sample count stays at 1500 requests: the p99 estimate of
    /// a smaller sample is noisy enough that single-window excursions past
    /// the SLO dominate the violation counts, drowning the placement
    /// signal the fast configuration exists to demonstrate.
    pub fn fast_test() -> Self {
        FleetConfig {
            servers: 8,
            steps: 45,
            windows_per_step: 3,
            seed: 43,
            colo: ColoConfig { requests_per_window: 1_500, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..Self::default()
        }
    }

    /// The `fast_test` configuration over the mixed-generation datacenter
    /// (a quarter older boxes, a quarter newer, the rest Haswell).
    pub fn fast_mixed() -> Self {
        FleetConfig { mix: GenerationMix::mixed_datacenter(), ..Self::fast_test() }
    }
}

/// Observation returned by one server's step (computed on a worker thread).
struct StepObservation {
    last_emu: f64,
    last_be_throughput: f64,
    worst_normalized_latency: f64,
    progress_core_s: f64,
    be_enabled: bool,
}

/// The fleet simulator: servers, scheduler state and the job stream.
pub struct FleetSim {
    config: FleetConfig,
    trace: DiurnalTrace,
    runners: Vec<ColoRunner>,
    store: PlacementStore,
    queue: JobQueue,
    policy: Box<dyn PlacementPolicy>,
    rng: SimRng,
}

impl FleetSim {
    /// Per-generation (LC workload, hardware) profiles for the mix.
    ///
    /// Every generation serves the same websearch service with its traffic
    /// share scaled to its compute capacity (the front-end load balancer
    /// weights traffic by machine capability, so a load fraction keeps
    /// meaning "fraction of what this box can serve").  Generations absent
    /// from the mix reuse the baseline profile, which lets the
    /// characterization and DRAM-model caches collapse them onto the
    /// baseline cells at zero extra cost.
    fn generation_profiles(
        config: &FleetConfig,
        baseline: &ServerConfig,
    ) -> Vec<(LcWorkload, ServerConfig)> {
        let websearch = LcWorkload::websearch();
        let counts = config.mix.counts(config.servers);
        let profile_of = |g: Generation| {
            if g == Generation::Haswell {
                (websearch.clone(), baseline.clone())
            } else {
                let gen_config = g.server_config(baseline);
                let ratio = gen_config.total_cores() as f64 / baseline.total_cores() as f64;
                (websearch.scaled_to_capacity(ratio), gen_config)
            }
        };
        // Absent generations borrow the first present generation's profile,
        // so the characterization / DRAM-model caches collapse them onto
        // cells that are measured anyway (never an extra sweep).
        let fallback = Generation::all()
            .into_iter()
            .find(|g| counts[g.index()] > 0)
            .unwrap_or(Generation::Haswell);
        Generation::all()
            .into_iter()
            .map(|g| if counts[g.index()] == 0 { profile_of(fallback) } else { profile_of(g) })
            .collect()
    }

    /// Creates a fleet under one of the built-in placement policies.
    ///
    /// For [`PolicyKind::InterferenceAware`] this runs the §3.2
    /// characterization cells for the job mix's workloads (in parallel)
    /// to measure their hostility scores — once per distinct hardware
    /// generation in the fleet's mix.
    pub fn new(config: FleetConfig, server_config: ServerConfig, policy: PolicyKind) -> Self {
        let policy: Box<dyn PlacementPolicy> = match policy {
            PolicyKind::Random => Box::new(RandomPlacement),
            PolicyKind::FirstFit => Box::new(FirstFit),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::InterferenceAware => {
                let probe = ColoConfig { requests_per_window: 1_000, ..ColoConfig::default() }
                    .with_seed(config.seed ^ 0xCAFE);
                let model = InterferenceModel::characterize(
                    &config.jobs.mix.workloads(),
                    &Self::generation_profiles(&config, &server_config),
                    &probe,
                );
                Box::new(InterferenceAware::new(model))
            }
        };
        Self::with_policy(config, server_config, policy)
    }

    /// Creates a fleet under a caller-supplied placement policy.
    ///
    /// # Panics
    ///
    /// Panics if `servers`, `be_slots_per_server`, `steps` or
    /// `windows_per_step` is zero, or the generation mix is invalid.
    pub fn with_policy(
        config: FleetConfig,
        server_config: ServerConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        assert!(config.servers > 0, "a fleet needs at least one server");
        assert!(config.steps > 0 && config.windows_per_step > 0, "steps must be positive");
        // The store's admission envelope mirrors the leaf controllers'
        // load hysteresis; fail fast if the two ever drift apart (placement
        // would silently dispatch jobs the controllers park at zero
        // progress — the bug class the admission predicate exists to stop).
        let leaf_config = HeraclesConfig::fast();
        assert_eq!(
            leaf_config.load_enable_threshold,
            crate::store::ADMISSION_LOAD_CEILING,
            "admission ceiling desynced from the controllers' enable threshold"
        );
        assert_eq!(
            leaf_config.load_disable_threshold,
            crate::store::ADMISSION_LOAD_DISABLE,
            "admission disable line desynced from the controllers' disable threshold"
        );
        let generations = config.mix.assignments(config.servers);
        let profiles = Self::generation_profiles(&config, &server_config);
        // One offline DRAM model per generation serves all of its leaves
        // (the paper shares one across the cluster too; the controller
        // tolerates the model error).  Absent generations get none.
        let dram_models: Vec<Option<OfflineDramModel>> = Generation::all()
            .into_iter()
            .map(|g| {
                let (lc, gen_config) = &profiles[g.index()];
                generations.contains(&g).then(|| OfflineDramModel::profile(lc, gen_config))
            })
            .collect();
        let runners = (0..config.servers)
            .map(|i| {
                let g = generations[i].index();
                let (lc, gen_config) = &profiles[g];
                let dram_model =
                    dram_models[g].clone().expect("present generations have a DRAM model");
                let leaf_policy: Box<dyn ColocationPolicy> =
                    Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), dram_model));
                ColoRunner::new(
                    gen_config.clone(),
                    lc.clone(),
                    None,
                    leaf_policy,
                    config.colo.with_seed(config.seed ^ (0xF1EE7 + i as u64 * 7919)),
                )
            })
            .collect();
        let capacities: Vec<ServerCapacity> = generations
            .iter()
            .map(|g| {
                ServerCapacity::from_config(
                    &profiles[g.index()].1,
                    config.be_slots_per_server,
                    g.index(),
                )
            })
            .collect();
        FleetSim {
            trace: DiurnalTrace::websearch_12h(config.seed),
            runners,
            store: PlacementStore::heterogeneous(&capacities),
            queue: JobQueue::new(config.jobs, config.seed),
            policy,
            rng: SimRng::new(config.seed).fork(0x9C4ED),
            config,
        }
    }

    /// The configuration this fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The placement policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Server `id`'s LC load at `time`: the shared diurnal trace shifted by
    /// the server's phase offset (wrapping around the trace period).
    pub fn server_load(&self, id: ServerId, time: SimTime) -> f64 {
        let period_s = self.trace.duration().as_secs_f64();
        let phase_s = period_s * self.config.load_spread * id as f64 / self.config.servers as f64;
        let t = (time.as_secs_f64() + phase_s) % period_s;
        self.trace.load_at(SimTime::from_secs_f64(t))
    }

    /// Points the runner's BE workload at its head resident job (or detaches
    /// it).  Jobs of the same kind share a profile, so a swap between them
    /// is a no-op.
    ///
    /// When several jobs share a server, the head job's profile stands in
    /// for the whole BE slice: the co-residents share the slice's
    /// throughput (see the progress crediting in [`FleetSim::run`]) but do
    /// not add their own contention to the hardware model.  This
    /// approximation understates interference when a hostile job hides
    /// behind a benign head — one reason the informed policies' occupancy
    /// penalty steers away from double-packing, and the first candidate to
    /// refine if multi-slot fidelity starts to matter.
    fn sync_attachment(&mut self, id: ServerId) {
        let head: Option<BeWorkload> =
            self.store.server(id).resident.first().map(|&job| self.queue.job(job).workload.clone());
        let current = self.runners[id].be().map(|b| b.kind());
        if current != head.as_ref().map(|w| w.kind()) {
            self.runners[id].set_be(head);
        }
        let attached = self.runners[id].be().map(|b| b.kind());
        self.store.set_attached_kind(id, attached);
    }

    /// Runs the fleet to the configured horizon and returns the result.
    pub fn run(mut self) -> FleetResult {
        let step_duration = self.config.colo.window * self.config.windows_per_step as u64;
        let window_s = self.config.colo.window.as_secs_f64();
        let server_cores: Vec<usize> = self.store.servers().iter().map(|s| s.cores).collect();
        let mut steps = Vec::with_capacity(self.config.steps);
        let mut events = Vec::new();
        let mut completed_total = 0usize;

        for step_idx in 0..self.config.steps {
            let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);

            // 1. This step's per-server loads.
            let loads: Vec<f64> =
                (0..self.config.servers).map(|i| self.server_load(i, now)).collect();
            for (id, &load) in loads.iter().enumerate() {
                self.store.set_load(id, load);
            }

            // 2. Arrivals.
            self.queue.arrive(now);

            // 3. Dispatch: FIFO with skipping.
            let pending = self.queue.take_pending();
            let mut unplaced = Vec::new();
            for job_id in pending {
                match self.policy.place(self.queue.job(job_id), &self.store, &mut self.rng) {
                    Some(server) => {
                        self.store.place(job_id, server);
                        let job = self.queue.job_mut(job_id);
                        if job.first_start.is_none() {
                            job.first_start = Some(now);
                        }
                        events.push(FleetEvent {
                            step: step_idx,
                            job: job_id,
                            server,
                            kind: FleetEventKind::Placed,
                        });
                    }
                    None => unplaced.push(job_id),
                }
            }
            self.queue.restore_pending(unplaced);
            for id in 0..self.config.servers {
                self.sync_attachment(id);
            }

            // 4. Advance every server, in parallel.
            let windows = self.config.windows_per_step;
            let mut paired: Vec<(f64, &mut ColoRunner)> =
                loads.iter().copied().zip(self.runners.iter_mut()).collect();
            let observations: Vec<StepObservation> = parallel_map_mut(&mut paired, |entry| {
                let (load, runner) = (entry.0, &mut *entry.1);
                let mut worst = 0.0f64;
                let mut progress = 0.0;
                for _ in 0..windows {
                    let record = runner.step(load);
                    worst = worst.max(record.normalized_latency);
                    progress += record.be_throughput * runner.be_alone_progress() * window_s;
                }
                let last = runner.last_record().expect("at least one window ran");
                StepObservation {
                    last_emu: last.emu,
                    last_be_throughput: last.be_throughput,
                    worst_normalized_latency: worst,
                    progress_core_s: progress,
                    be_enabled: runner.be_enabled(),
                }
            });

            // 5. Credit progress, complete, preempt; 6. refresh the store.
            let mut step_progress = 0.0;
            for (id, obs) in observations.iter().enumerate() {
                let resident = self.store.server(id).resident.clone();
                // Split the step's progress evenly across residents,
                // redistributing overshoot past a job's remaining demand to
                // its co-residents; only work actually absorbed counts as
                // served.
                let mut budget = obs.progress_core_s;
                if !resident.is_empty() {
                    let mut open = resident.clone();
                    while budget > 1e-9 && !open.is_empty() {
                        let share = budget / open.len() as f64;
                        budget = 0.0;
                        let mut still_open = Vec::with_capacity(open.len());
                        for job_id in open {
                            let job = self.queue.job_mut(job_id);
                            let take = share.min(job.remaining_core_s.max(0.0));
                            job.remaining_core_s -= take;
                            step_progress += take;
                            if take < share {
                                budget += share - take;
                            } else if !job.is_complete() {
                                still_open.push(job_id);
                            }
                        }
                        open = still_open;
                    }
                }
                for &job_id in &resident {
                    if self.queue.job(job_id).is_complete() {
                        self.queue.job_mut(job_id).completion = Some(now);
                        self.store.release(job_id, id);
                        completed_total += 1;
                        events.push(FleetEvent {
                            step: step_idx,
                            job: job_id,
                            server: id,
                            kind: FleetEventKind::Completed,
                        });
                    }
                }
                self.store.observe(
                    id,
                    now,
                    1.0 - obs.worst_normalized_latency,
                    obs.last_emu,
                    obs.last_be_throughput,
                    obs.be_enabled,
                );
                if self.store.server(id).disabled_streak > self.config.preemption_grace_steps {
                    // The server's controller has kept BE parked past the
                    // grace period: route the jobs elsewhere.  Requeue in
                    // reverse so the earliest resident ends up frontmost.
                    let evicted = self.store.server(id).resident.clone();
                    for &job_id in evicted.iter().rev() {
                        self.store.release(job_id, id);
                        self.queue.requeue_front(job_id);
                        events.push(FleetEvent {
                            step: step_idx,
                            job: job_id,
                            server: id,
                            kind: FleetEventKind::Preempted,
                        });
                    }
                }
                self.sync_attachment(id);
            }

            // 7. Record the step.  Utilization aggregates are core-weighted:
            // on a mixed fleet a big box's windows represent more machine
            // time than a small box's.
            let n = self.config.servers as f64;
            let emus: Vec<f64> = observations.iter().map(|o| o.last_emu).collect();
            steps.push(FleetStep {
                time: now,
                mean_load: core_weighted_mean(&loads, &server_cores),
                fleet_emu: core_weighted_mean(&emus, &server_cores),
                worst_normalized_latency: observations
                    .iter()
                    .map(|o| o.worst_normalized_latency)
                    .fold(0.0, f64::max),
                violating_server_fraction: observations
                    .iter()
                    .filter(|o| o.worst_normalized_latency > 1.0)
                    .count() as f64
                    / n,
                queued_jobs: self.queue.pending_len(),
                running_jobs: self.store.running_jobs(),
                completed_jobs: completed_total,
                be_progress_core_s: step_progress,
            });
        }

        FleetResult {
            policy: self.policy.name().to_string(),
            server_cores,
            steps,
            jobs: self.queue.into_jobs(),
            events,
        }
    }
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("servers", &self.config.servers)
            .field("policy", &self.policy.name())
            .field("queued", &self.queue.pending_len())
            .finish()
    }
}

/// SLO violation fraction of the paper's single-server Heracles deployment
/// over the same diurnal trace: one websearch server colocating brain under
/// Heracles, stepped like a fleet member at phase 0.  This is the bar the
/// fleet scheduler must not regress — fleet-level placement may add and
/// remove jobs, but each server's controller still defends its SLO.
pub fn single_server_baseline_violations(config: &FleetConfig, server: &ServerConfig) -> f64 {
    let websearch = LcWorkload::websearch();
    let dram_model = OfflineDramModel::profile(&websearch, server);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), websearch.slo(), dram_model));
    let mut runner = ColoRunner::new(
        server.clone(),
        websearch,
        Some(BeWorkload::brain()),
        policy,
        config.colo.with_seed(config.seed ^ 0xBA5E),
    );
    let trace = DiurnalTrace::websearch_12h(config.seed);
    let step_duration = config.colo.window * config.windows_per_step as u64;
    let mut violating_steps = 0usize;
    for step_idx in 0..config.steps {
        let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);
        let load = {
            let period_s = trace.duration().as_secs_f64();
            trace.load_at(SimTime::from_secs_f64(now.as_secs_f64() % period_s))
        };
        let worst = (0..config.windows_per_step)
            .map(|_| runner.step(load).normalized_latency)
            .fold(0.0, f64::max);
        if worst > 1.0 {
            violating_steps += 1;
        }
    }
    violating_steps as f64 / config.steps.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            servers: 4,
            steps: 10,
            windows_per_step: 2,
            colo: ColoConfig { requests_per_window: 600, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_test()
        }
    }

    #[test]
    fn server_loads_span_the_diurnal_range() {
        let sim = FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::FirstFit);
        let t = SimTime::from_secs(60);
        let loads: Vec<f64> = (0..4).map(|i| sim.server_load(i, t)).collect();
        // With full spread the phase offsets put servers at different points
        // of the diurnal swing.
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "loads {loads:?}");
        for l in loads {
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn fleet_runs_place_serve_and_complete_jobs() {
        let result =
            FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        assert_eq!(result.steps.len(), 10);
        assert!(!result.jobs.is_empty(), "the stream produced no jobs");
        assert!(
            result.events.iter().any(|e| e.kind == FleetEventKind::Placed),
            "nothing was ever placed"
        );
        assert!(result.be_core_s_served() > 0.0, "no BE progress at all");
        // EMU must exceed pure LC load once BE work is being served.
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        // Step records are internally consistent.
        for step in &result.steps {
            assert!(step.fleet_emu >= 0.0 && step.worst_normalized_latency >= 0.0);
            assert!(step.running_jobs <= 4 * 2, "slot capacity exceeded");
        }
    }

    #[test]
    fn mixed_fleet_carries_per_generation_capacity_end_to_end() {
        let cfg = FleetConfig { mix: GenerationMix::mixed_datacenter(), ..tiny() };
        let result =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        // counts(4) = [1, 2, 1]: one Sandy Bridge, two Haswells, one Skylake.
        let mut cores = result.server_cores.clone();
        cores.sort_unstable();
        assert_eq!(cores, vec![16, 36, 36, 48]);
        assert_eq!(result.total_cores(), 136);
        assert_eq!(result.steps.len(), 10);
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        assert!(result.mean_fleet_emu() > 0.0 && result.mean_fleet_emu() <= 2.0);
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let run = |seed| {
            let cfg = FleetConfig { seed, ..tiny() };
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::Random).run()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.events, b.events);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.steps, b.steps);
        let c = run(4);
        assert!(a.events != c.events || a.jobs != c.jobs, "different seeds identical");
    }

    #[test]
    fn baseline_violation_fraction_is_a_fraction() {
        let cfg = tiny();
        let v = single_server_baseline_violations(&cfg, &ServerConfig::default_haswell());
        assert!((0.0..=1.0).contains(&v));
    }
}
