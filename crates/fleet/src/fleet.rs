//! The discrete-time fleet simulator.
//!
//! A fleet is N servers, each serving websearch under its own per-server
//! Heracles controller (a [`ColoRunner`] leaf, exactly the harness the
//! single-server experiments use), plus one fleet-level scheduler placing a
//! stream of BE jobs onto the servers' BE slots.  Load is diurnal with
//! per-server phase offsets, so at any moment the fleet spans the whole
//! load range — some servers are colocation-friendly, others are near their
//! latency knee.
//!
//! The fleet may mix hardware generations (a [`GenerationMix`]): each
//! generation runs its own [`ServerConfig`], serves a traffic share scaled
//! to its compute capacity (modelling a capacity-weighted front-end load
//! balancer, so a load fraction always means "fraction of what this box can
//! serve"), and exposes its core count and DRAM bandwidth to the placement
//! store.  Fleet-level EMU and the TCO comparison are core-weighted: a
//! 48-core box at 80% contributes three times the machine time of a 16-core
//! box at the same fraction.
//!
//! Each step the simulator:
//!
//! 1. samples every in-service server's LC load from its phase-shifted
//!    diurnal trace,
//! 2. admits this step's job arrivals into the queue,
//! 3. dispatches queued jobs through the [`PlacementPolicy`] against the
//!    [`PlacementStore`],
//! 4. advances every in-service server by `windows_per_step` measurement
//!    windows — in parallel across servers via [`parallel_map_mut`], since
//!    servers only interact through the scheduler between steps,
//! 5. credits BE progress to resident jobs, completes jobs whose demand is
//!    served, and preempts/requeues jobs whose server kept BE disabled
//!    beyond the grace period (the controller's verdict is final: Heracles
//!    defends the local SLO, the scheduler routes around it),
//! 6. refreshes the store with each server's slack, EMU and admission
//!    verdict, and charges the step's amortized TCO to the in-service
//!    servers.
//!
//! The step loop is exposed piecewise ([`FleetSim::step_once`] /
//! [`FleetSim::into_result`]) so the elastic controller in
//! `heracles_autoscale` can interleave scale actions between steps:
//! [`FleetSim::add_server`] commissions a freshly purchased box mid-run,
//! [`FleetSim::begin_drain`] / [`FleetSim::retire_server`] decommission one,
//! and [`FleetSim::migrate_job`] live-migrates a resident job (preserving
//! its remaining demand and charging a migration cost in core·seconds)
//! instead of requeueing it from scratch.  [`FleetSim::run`] is the
//! static-fleet convenience loop.
//!
//! Everything is a pure function of the seed: the job stream, the traces,
//! every per-server RNG and the policy's tie-breaking all derive from it,
//! so identical seeds give identical schedules — and identical scale-action
//! sequences give identical elastic schedules.

use heracles_cluster::TcoModel;
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_sim::{parallel_map_mut, SimRng, SimTime};
use heracles_workloads::{BeWorkload, DiurnalTrace, LcWorkload};
use serde::{Deserialize, Serialize};

use crate::generation::{Generation, GenerationMix};
use crate::job::{BeJob, JobId, JobQueue, JobStreamConfig};
use crate::metrics::{
    core_weighted_mean, server_step_tco_dollars, FleetEvent, FleetEventKind, FleetResult, FleetStep,
};
use crate::policy::{
    FirstFit, InterferenceAware, InterferenceModel, LeastLoaded, PlacementPolicy, PolicyKind,
    RandomPlacement,
};
use crate::store::{PlacementStore, ServerCapacity, ServerId};

/// Phase-offset multiplier for servers commissioned mid-run (autoscaler
/// scale-out): the golden-ratio fraction of the id spreads late arrivals
/// across the diurnal cycle without disturbing the original fleet's evenly
/// spaced offsets.
const ADDED_SERVER_PHASE_STRIDE: f64 = 0.618_033_988_749_894_8;

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers in the fleet.
    pub servers: usize,
    /// BE job slots per *reference-capacity* (Haswell, 36-core) server.
    /// Other generations scale this with their core count (rounded, floor
    /// of one): a 48-core box hosts proportionally more jobs, a 16-core box
    /// fewer.
    pub be_slots_per_server: usize,
    /// Number of scheduler steps to simulate.
    pub steps: usize,
    /// Measurement windows each server advances per step.
    pub windows_per_step: usize,
    /// Seed for the job stream, traces and every per-server random stream.
    pub seed: u64,
    /// Fraction of the diurnal period the per-server phase offsets span
    /// (1.0 spreads the fleet across the whole cycle; 0.0 moves every
    /// server in lockstep).
    pub load_spread: f64,
    /// How many seconds of diurnal (and TCO) wall time one simulated second
    /// represents (1.0 by default: no compression).
    ///
    /// A measurement window is already a statistical sample standing in for
    /// a longer production interval, so a run does not need to simulate
    /// every second of a 12-hour day to traverse its load cycle: with
    /// compression C, trace lookups advance C× faster and each step's
    /// amortized TCO charge covers C× the simulated wall time.  This is
    /// what lets a `--fast` elastic run sweep a whole diurnal peak and
    /// valley — the regime where autoscaling earns or loses its keep —
    /// in seconds of simulation.  Job demands and BE progress stay in
    /// simulated core·seconds, so the work ledger is unaffected.
    pub time_compression: f64,
    /// The blend of hardware generations across the fleet (homogeneous by
    /// default: every server runs the baseline configuration).
    pub mix: GenerationMix,
    /// Steps a server may sit occupied with BE disabled before its jobs are
    /// preempted and requeued.
    pub preemption_grace_steps: usize,
    /// The cost model behind the per-step amortized TCO series (the paper's
    /// case-study parameters by default).
    pub tco: TcoModel,
    /// Per-server harness configuration.
    pub colo: ColoConfig,
    /// The job arrival process.
    pub jobs: JobStreamConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 50,
            be_slots_per_server: 2,
            steps: 144,
            windows_per_step: 4,
            seed: 42,
            load_spread: 1.0,
            time_compression: 1.0,
            mix: GenerationMix::homogeneous(),
            preemption_grace_steps: 2,
            tco: TcoModel::paper_case_study(),
            colo: ColoConfig { requests_per_window: 1_200, ..ColoConfig::default() },
            jobs: JobStreamConfig { arrivals_per_step: 5.0, ..JobStreamConfig::default() },
        }
    }
}

impl FleetConfig {
    /// A scaled-down configuration for tests and `--fast` runs.
    ///
    /// The window sample count stays at 1500 requests: the p99 estimate of
    /// a smaller sample is noisy enough that single-window excursions past
    /// the SLO dominate the violation counts, drowning the placement
    /// signal the fast configuration exists to demonstrate.
    pub fn fast_test() -> Self {
        FleetConfig {
            servers: 8,
            steps: 45,
            windows_per_step: 3,
            seed: 43,
            colo: ColoConfig { requests_per_window: 1_500, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..Self::default()
        }
    }

    /// The `fast_test` configuration over the mixed-generation datacenter
    /// (a quarter older boxes, a quarter newer, the rest Haswell).
    pub fn fast_mixed() -> Self {
        FleetConfig { mix: GenerationMix::mixed_datacenter(), ..Self::fast_test() }
    }

    /// Validates the configuration, returning a human-readable description
    /// of the first violation.
    ///
    /// Degenerate configurations (zero servers or steps, a phase spread
    /// outside `[0, 1]`, generation fractions that do not describe a fleet,
    /// an impossible job stream) used to slip through and silently produce
    /// empty or nonsensical runs; every constructor now rejects them with a
    /// message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("a fleet needs at least one server (servers = 0)".into());
        }
        if self.be_slots_per_server == 0 {
            return Err("servers need at least one BE slot (be_slots_per_server = 0)".into());
        }
        if self.steps == 0 || self.windows_per_step == 0 {
            return Err(format!(
                "steps must be positive (steps = {}, windows_per_step = {})",
                self.steps, self.windows_per_step
            ));
        }
        if !self.load_spread.is_finite() || !(0.0..=1.0).contains(&self.load_spread) {
            return Err(format!("load_spread must be in [0, 1] (got {})", self.load_spread));
        }
        if !self.time_compression.is_finite() || self.time_compression <= 0.0 {
            return Err(format!(
                "time_compression must be finite and positive (got {})",
                self.time_compression
            ));
        }
        self.mix.validate()?;
        if !self.jobs.arrivals_per_step.is_finite() || self.jobs.arrivals_per_step < 0.0 {
            return Err(format!(
                "arrivals_per_step must be finite and non-negative (got {})",
                self.jobs.arrivals_per_step
            ));
        }
        let (demand_min, demand_max) = (self.jobs.demand_min_core_s, self.jobs.demand_max_core_s);
        if !demand_min.is_finite()
            || !demand_max.is_finite()
            || demand_min <= 0.0
            || demand_max < demand_min
        {
            return Err(format!(
                "job demand bounds must be finite and satisfy 0 < min <= max \
                 (got {demand_min}..{demand_max})"
            ));
        }
        if !self.jobs.demand_alpha.is_finite() || self.jobs.demand_alpha <= 0.0 {
            return Err(format!(
                "demand_alpha must be finite and positive (got {})",
                self.jobs.demand_alpha
            ));
        }
        Ok(())
    }

    /// Duration of one scheduler step.
    pub fn step_duration(&self) -> heracles_sim::SimDuration {
        self.colo.window * self.windows_per_step as u64
    }
}

/// Observation returned by one server's step (computed on a worker thread).
struct StepObservation {
    last_emu: f64,
    last_be_throughput: f64,
    worst_normalized_latency: f64,
    progress_core_s: f64,
    be_enabled: bool,
}

/// The fleet simulator: servers, scheduler state and the job stream.
pub struct FleetSim {
    config: FleetConfig,
    trace: DiurnalTrace,
    runners: Vec<ColoRunner>,
    store: PlacementStore,
    queue: JobQueue,
    policy: Box<dyn PlacementPolicy>,
    rng: SimRng,
    /// True per-generation (LC workload, hardware) profiles, indexed by
    /// generation index — the source of truth for mid-run purchases of a
    /// generation absent from the initial mix.
    profiles: Vec<(LcWorkload, ServerConfig)>,
    /// One offline DRAM model per generation, profiled lazily: present
    /// generations at construction, purchased ones on first `add_server`.
    dram_models: Vec<Option<OfflineDramModel>>,
    /// Per-server diurnal phase offsets, in seconds (stable across
    /// mid-run additions: existing servers never shift phase).
    phases_s: Vec<f64>,
    steps: Vec<FleetStep>,
    events: Vec<FleetEvent>,
    completed_total: usize,
    step_idx: usize,
    /// Migrations committed since the last recorded step (folded into the
    /// next [`FleetStep`]).
    pending_migrations: usize,
}

impl FleetSim {
    /// True per-generation (LC workload, hardware) profiles.
    ///
    /// Every generation serves the same websearch service with its traffic
    /// share scaled to its compute capacity (the front-end load balancer
    /// weights traffic by machine capability, so a load fraction keeps
    /// meaning "fraction of what this box can serve").
    fn true_profiles(baseline: &ServerConfig) -> Vec<(LcWorkload, ServerConfig)> {
        let websearch = LcWorkload::websearch();
        Generation::all()
            .into_iter()
            .map(|g| {
                if g == Generation::Haswell {
                    (websearch.clone(), baseline.clone())
                } else {
                    let gen_config = g.server_config(baseline);
                    let ratio = gen_config.total_cores() as f64 / baseline.total_cores() as f64;
                    (websearch.scaled_to_capacity(ratio), gen_config)
                }
            })
            .collect()
    }

    /// Per-generation profiles for the *characterization* step: generations
    /// absent from the mix borrow the first present generation's profile,
    /// so the characterization and DRAM-model caches collapse them onto
    /// cells that are measured anyway (never an extra sweep).
    fn generation_profiles(
        config: &FleetConfig,
        baseline: &ServerConfig,
    ) -> Vec<(LcWorkload, ServerConfig)> {
        let profiles = Self::true_profiles(baseline);
        let counts = config.mix.counts(config.servers);
        let fallback = Generation::all()
            .into_iter()
            .find(|g| counts[g.index()] > 0)
            .unwrap_or(Generation::Haswell);
        Generation::all()
            .into_iter()
            .map(|g| {
                if counts[g.index()] == 0 {
                    profiles[fallback.index()].clone()
                } else {
                    profiles[g.index()].clone()
                }
            })
            .collect()
    }

    /// Creates a fleet under one of the built-in placement policies.
    ///
    /// For [`PolicyKind::InterferenceAware`] this runs the §3.2
    /// characterization cells for the job mix's workloads (in parallel)
    /// to measure their hostility scores — once per distinct hardware
    /// generation in the fleet's mix.
    pub fn new(config: FleetConfig, server_config: ServerConfig, policy: PolicyKind) -> Self {
        let policy: Box<dyn PlacementPolicy> = match policy {
            PolicyKind::Random => Box::new(RandomPlacement),
            PolicyKind::FirstFit => Box::new(FirstFit),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::InterferenceAware => {
                let probe = ColoConfig { requests_per_window: 1_000, ..ColoConfig::default() }
                    .with_seed(config.seed ^ 0xCAFE);
                let model = InterferenceModel::characterize(
                    &config.jobs.mix.workloads(),
                    &Self::generation_profiles(&config, &server_config),
                    &probe,
                );
                Box::new(InterferenceAware::new(model))
            }
        };
        Self::with_policy(config, server_config, policy)
    }

    /// Creates a fleet under a caller-supplied placement policy.
    ///
    /// # Panics
    ///
    /// Panics if [`FleetConfig::validate`] rejects the configuration.
    pub fn with_policy(
        config: FleetConfig,
        server_config: ServerConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid fleet config: {e}"));
        // The store's admission envelope mirrors the leaf controllers'
        // load hysteresis; fail fast if the two ever drift apart (placement
        // would silently dispatch jobs the controllers park at zero
        // progress — the bug class the admission predicate exists to stop).
        let leaf_config = HeraclesConfig::fast();
        assert_eq!(
            leaf_config.load_enable_threshold,
            crate::store::ADMISSION_LOAD_CEILING,
            "admission ceiling desynced from the controllers' enable threshold"
        );
        assert_eq!(
            leaf_config.load_disable_threshold,
            crate::store::ADMISSION_LOAD_DISABLE,
            "admission disable line desynced from the controllers' disable threshold"
        );
        let generations = config.mix.assignments(config.servers);
        let profiles = Self::true_profiles(&server_config);
        // One offline DRAM model per generation serves all of its leaves
        // (the paper shares one across the cluster too; the controller
        // tolerates the model error).  Absent generations get none until an
        // autoscaler purchases one.
        let dram_models: Vec<Option<OfflineDramModel>> = Generation::all()
            .into_iter()
            .map(|g| {
                let (lc, gen_config) = &profiles[g.index()];
                generations.contains(&g).then(|| OfflineDramModel::profile(lc, gen_config))
            })
            .collect();
        let runners = (0..config.servers)
            .map(|i| {
                let g = generations[i].index();
                let (lc, gen_config) = &profiles[g];
                let dram_model =
                    dram_models[g].clone().expect("present generations have a DRAM model");
                let leaf_policy: Box<dyn ColocationPolicy> =
                    Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), dram_model));
                ColoRunner::new(
                    gen_config.clone(),
                    lc.clone(),
                    None,
                    leaf_policy,
                    config.colo.with_seed(config.seed ^ (0xF1EE7 + i as u64 * 7919)),
                )
            })
            .collect();
        let capacities: Vec<ServerCapacity> = generations
            .iter()
            .map(|g| {
                ServerCapacity::from_config(
                    &profiles[g.index()].1,
                    config.be_slots_per_server,
                    g.index(),
                )
            })
            .collect();
        let trace = DiurnalTrace::websearch_12h(config.seed);
        let period_s = trace.duration().as_secs_f64();
        let phases_s = (0..config.servers)
            .map(|i| period_s * config.load_spread * i as f64 / config.servers as f64)
            .collect();
        FleetSim {
            trace,
            runners,
            store: PlacementStore::heterogeneous(&capacities),
            queue: JobQueue::new(config.jobs, config.seed),
            policy,
            rng: SimRng::new(config.seed).fork(0x9C4ED),
            profiles,
            dram_models,
            phases_s,
            steps: Vec::with_capacity(config.steps),
            events: Vec::new(),
            completed_total: 0,
            step_idx: 0,
            pending_migrations: 0,
            config,
        }
    }

    /// The configuration this fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The placement policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The scheduler's live view of the fleet.
    pub fn store(&self) -> &PlacementStore {
        &self.store
    }

    /// Every job the arrival stream has produced so far.
    pub fn jobs(&self) -> &[BeJob] {
        self.queue.jobs()
    }

    /// One job by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued.
    pub fn job(&self, id: JobId) -> &BeJob {
        self.queue.job(id)
    }

    /// Number of jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.pending_len()
    }

    /// Index of the next step to run (also: how many steps have run).
    pub fn current_step(&self) -> usize {
        self.step_idx
    }

    /// Simulated time at the end of the most recent step (`ZERO` before the
    /// first).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + self.config.step_duration() * self.step_idx as u64
    }

    /// The steps recorded so far.
    pub fn steps_so_far(&self) -> &[FleetStep] {
        &self.steps
    }

    /// Server `id`'s LC load at `time`: the shared diurnal trace shifted by
    /// the server's phase offset (wrapping around the trace period).
    pub fn server_load(&self, id: ServerId, time: SimTime) -> f64 {
        let period_s = self.trace.duration().as_secs_f64();
        let t = (time.as_secs_f64() * self.config.time_compression + self.phases_s[id]) % period_s;
        self.trace.load_at(SimTime::from_secs_f64(t))
    }

    /// Core-weighted mean LC load across in-service servers `lead_steps`
    /// scheduler steps ahead of the step about to run.  The diurnal trace
    /// is a known input (capacity planners have yesterday's traffic), so a
    /// predictive autoscaler may legitimately look ahead; `lead_steps = 0`
    /// is the load the very next step will sample.
    pub fn forecast_mean_load(&self, lead_steps: usize) -> f64 {
        let t =
            SimTime::ZERO + self.config.step_duration() * (self.step_idx + 1 + lead_steps) as u64;
        let (mut weighted, mut cores) = (0.0f64, 0.0f64);
        for s in self.store.servers().iter().filter(|s| s.in_service()) {
            weighted += self.server_load(s.id, t) * s.cores as f64;
            cores += s.cores as f64;
        }
        if cores > 0.0 {
            weighted / cores
        } else {
            0.0
        }
    }

    /// Commissions a new server of `generation` (autoscaler scale-out) and
    /// returns its id.  The box arrives empty and active, its Heracles
    /// controller cold, its diurnal phase drawn from the golden-ratio
    /// stride so late purchases spread across the load cycle; its DRAM
    /// model is profiled on first purchase of a generation absent from the
    /// initial mix and cached for subsequent ones.
    pub fn add_server(&mut self, generation: Generation) -> ServerId {
        let id = self.runners.len();
        let gi = generation.index();
        if self.dram_models[gi].is_none() {
            let (lc, gen_config) = &self.profiles[gi];
            self.dram_models[gi] = Some(OfflineDramModel::profile(lc, gen_config));
        }
        let (lc, gen_config) = &self.profiles[gi];
        let dram_model = self.dram_models[gi].clone().expect("just profiled");
        let leaf_policy: Box<dyn ColocationPolicy> =
            Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), dram_model));
        self.runners.push(ColoRunner::new(
            gen_config.clone(),
            lc.clone(),
            None,
            leaf_policy,
            self.config.colo.with_seed(self.config.seed ^ (0xF1EE7 + id as u64 * 7919)),
        ));
        let capacity = ServerCapacity::from_config(gen_config, self.config.be_slots_per_server, gi);
        let store_id = self.store.add_server(capacity);
        debug_assert_eq!(store_id, id, "store and runner ids diverged");
        let period_s = self.trace.duration().as_secs_f64();
        self.phases_s.push(
            period_s * self.config.load_spread * (id as f64 * ADDED_SERVER_PHASE_STRIDE).fract(),
        );
        id
    }

    /// Marks a server as draining (autoscaler scale-in, phase one): no new
    /// BE work, residents to be migrated away.
    pub fn begin_drain(&mut self, id: ServerId) {
        self.store.begin_drain(id);
    }

    /// Returns a draining server to active service (a cancelled scale-in).
    pub fn reactivate_server(&mut self, id: ServerId) {
        self.store.reactivate(id);
    }

    /// Retires a drained server (autoscaler scale-in, phase two): it stops
    /// stepping and stops costing TCO from the next step on.
    ///
    /// # Panics
    ///
    /// Panics if the server still hosts resident jobs — retiring a box with
    /// unmigrated work is exactly the bug the drain protocol exists to
    /// prevent, and the autoscaler's property tests lean on this assert.
    pub fn retire_server(&mut self, id: ServerId) {
        self.store.retire(id);
    }

    /// Live-migrates a resident job from `from` to `to`, preserving its
    /// remaining demand and charging `cost_core_s` of migration overhead
    /// (moving memory/state costs destination compute, modeled in the same
    /// core·second currency as the demand itself).  The job never passes
    /// through the queue and keeps its first-start timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on `from`, `to` is retired or has
    /// no free slot, or the cost is negative or non-finite.
    pub fn migrate_job(&mut self, job: JobId, from: ServerId, to: ServerId, cost_core_s: f64) {
        assert!(
            cost_core_s.is_finite() && cost_core_s >= 0.0,
            "migration cost must be finite and non-negative (got {cost_core_s})"
        );
        assert!(self.store.server(to).in_service(), "migration target {to} is retired");
        self.store.migrate(job, from, to);
        let entry = self.queue.job_mut(job);
        entry.remaining_core_s += cost_core_s;
        entry.migration_overhead_core_s += cost_core_s;
        entry.migrations += 1;
        self.pending_migrations += 1;
        self.events.push(FleetEvent {
            step: self.step_idx,
            job,
            server: to,
            kind: FleetEventKind::Migrated,
        });
        self.sync_attachment(from);
        self.sync_attachment(to);
    }

    /// Preempts a resident job back to the front of the queue — the drain
    /// pricer's fallback when a migration costs more than the job has left.
    /// Counts as a preemption in the job ledger.
    pub fn requeue_job(&mut self, job: JobId, from: ServerId) {
        self.store.release(job, from);
        self.queue.requeue_front(job);
        self.events.push(FleetEvent {
            step: self.step_idx,
            job,
            server: from,
            kind: FleetEventKind::Preempted,
        });
        self.sync_attachment(from);
    }

    /// Points the runner's BE workload at its head resident job (or detaches
    /// it).  Jobs of the same kind share a profile, so a swap between them
    /// is a no-op.
    ///
    /// When several jobs share a server, the head job's profile stands in
    /// for the whole BE slice: the co-residents share the slice's
    /// throughput (see the progress crediting in [`FleetSim::step_once`])
    /// but do not add their own contention to the hardware model.  This
    /// approximation understates interference when a hostile job hides
    /// behind a benign head — one reason the informed policies' occupancy
    /// penalty steers away from double-packing, and the first candidate to
    /// refine if multi-slot fidelity starts to matter.
    fn sync_attachment(&mut self, id: ServerId) {
        let head: Option<BeWorkload> =
            self.store.server(id).resident.first().map(|&job| self.queue.job(job).workload.clone());
        let current = self.runners[id].be().map(|b| b.kind());
        if current != head.as_ref().map(|w| w.kind()) {
            self.runners[id].set_be(head);
        }
        let attached = self.runners[id].be().map(|b| b.kind());
        self.store.set_attached_kind(id, attached);
    }

    /// Runs one scheduler step over the in-service fleet and returns the
    /// recorded step.  Retired servers neither step nor cost TCO; an
    /// elastic controller interleaves scale actions between calls.
    pub fn step_once(&mut self) -> &FleetStep {
        let step_duration = self.config.step_duration();
        let window_s = self.config.colo.window.as_secs_f64();
        let step_idx = self.step_idx;
        let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);

        let in_service: Vec<ServerId> =
            self.store.servers().iter().filter(|s| s.in_service()).map(|s| s.id).collect();

        // 1. This step's per-server loads.
        let loads: Vec<f64> = in_service.iter().map(|&id| self.server_load(id, now)).collect();
        for (&id, &load) in in_service.iter().zip(&loads) {
            self.store.set_load(id, load);
        }

        // 2. Arrivals.
        self.queue.arrive(now);

        // 3. Dispatch: FIFO with skipping.
        let pending = self.queue.take_pending();
        let mut unplaced = Vec::new();
        for job_id in pending {
            match self.policy.place(self.queue.job(job_id), &self.store, &mut self.rng) {
                Some(server) => {
                    self.store.place(job_id, server);
                    let job = self.queue.job_mut(job_id);
                    if job.first_start.is_none() {
                        job.first_start = Some(now);
                    }
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server,
                        kind: FleetEventKind::Placed,
                    });
                }
                None => unplaced.push(job_id),
            }
        }
        self.queue.restore_pending(unplaced);
        for &id in &in_service {
            self.sync_attachment(id);
        }

        // 4. Advance every in-service server, in parallel.  Retired runners
        // stay in place (ids must remain dense) but never step.  The
        // mask-filtered runner iterator ascends by id — exactly the order
        // of `in_service` and `loads` (and of `observations` below), so
        // the zip aligns loads with their runners.
        let windows = self.config.windows_per_step;
        let in_service_mask: Vec<bool> =
            self.store.servers().iter().map(|s| s.in_service()).collect();
        let mut paired: Vec<(f64, &mut ColoRunner)> = self
            .runners
            .iter_mut()
            .enumerate()
            .filter(|(id, _)| in_service_mask[*id])
            .zip(loads.iter().copied())
            .map(|((_, runner), load)| (load, runner))
            .collect();
        debug_assert_eq!(paired.len(), in_service.len());
        let observations: Vec<StepObservation> = parallel_map_mut(&mut paired, |entry| {
            let (load, runner) = (entry.0, &mut *entry.1);
            let mut worst = 0.0f64;
            let mut progress = 0.0;
            for _ in 0..windows {
                let record = runner.step(load);
                worst = worst.max(record.normalized_latency);
                progress += record.be_throughput * runner.be_alone_progress() * window_s;
            }
            let last = runner.last_record().expect("at least one window ran");
            StepObservation {
                last_emu: last.emu,
                last_be_throughput: last.be_throughput,
                worst_normalized_latency: worst,
                progress_core_s: progress,
                be_enabled: runner.be_enabled(),
            }
        });

        // 5. Credit progress, complete, preempt; 6. refresh the store.
        let mut step_progress = 0.0;
        for (&id, obs) in in_service.iter().zip(&observations) {
            let resident = self.store.server(id).resident.clone();
            // Split the step's progress evenly across residents,
            // redistributing overshoot past a job's remaining demand to
            // its co-residents; only work actually absorbed counts as
            // served.
            let mut budget = obs.progress_core_s;
            if !resident.is_empty() {
                let mut open = resident.clone();
                while budget > 1e-9 && !open.is_empty() {
                    let share = budget / open.len() as f64;
                    budget = 0.0;
                    let mut still_open = Vec::with_capacity(open.len());
                    for job_id in open {
                        let job = self.queue.job_mut(job_id);
                        let take = share.min(job.remaining_core_s.max(0.0));
                        job.remaining_core_s -= take;
                        step_progress += take;
                        if take < share {
                            budget += share - take;
                        } else if !job.is_complete() {
                            still_open.push(job_id);
                        }
                    }
                    open = still_open;
                }
            }
            for &job_id in &resident {
                if self.queue.job(job_id).is_complete() {
                    self.queue.job_mut(job_id).completion = Some(now);
                    self.store.release(job_id, id);
                    self.completed_total += 1;
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server: id,
                        kind: FleetEventKind::Completed,
                    });
                }
            }
            self.store.observe(
                id,
                now,
                1.0 - obs.worst_normalized_latency,
                obs.last_emu,
                obs.last_be_throughput,
                obs.be_enabled,
            );
            if self.store.server(id).disabled_streak > self.config.preemption_grace_steps {
                // The server's controller has kept BE parked past the
                // grace period: route the jobs elsewhere.  Requeue in
                // reverse so the earliest resident ends up frontmost.
                let evicted = self.store.server(id).resident.clone();
                for &job_id in evicted.iter().rev() {
                    self.store.release(job_id, id);
                    self.queue.requeue_front(job_id);
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server: id,
                        kind: FleetEventKind::Preempted,
                    });
                }
            }
            self.sync_attachment(id);
        }

        // 7. Record the step.  Utilization aggregates are core-weighted
        // over the in-service fleet: on a mixed fleet a big box's windows
        // represent more machine time than a small box's, and a retired
        // box represents none.  The TCO column charges each in-service
        // server its amortized capex plus energy at its achieved EMU, over
        // the wall time the step *represents* (see
        // [`FleetConfig::time_compression`]).
        let step_s = window_s * windows as f64 * self.config.time_compression;
        let cores: Vec<usize> = in_service.iter().map(|&id| self.store.server(id).cores).collect();
        let emus: Vec<f64> = observations.iter().map(|o| o.last_emu).collect();
        let violating = observations.iter().filter(|o| o.worst_normalized_latency > 1.0).count();
        let tco_dollars = in_service
            .iter()
            .zip(&observations)
            .map(|(&id, o)| {
                server_step_tco_dollars(
                    &self.config.tco,
                    self.store.server(id).cores,
                    o.last_emu,
                    step_s,
                )
            })
            .sum();
        self.steps.push(FleetStep {
            time: now,
            mean_load: core_weighted_mean(&loads, &cores),
            fleet_emu: core_weighted_mean(&emus, &cores),
            worst_normalized_latency: observations
                .iter()
                .map(|o| o.worst_normalized_latency)
                .fold(0.0, f64::max),
            violating_server_fraction: violating as f64 / in_service.len().max(1) as f64,
            violating_servers: violating,
            in_service_servers: in_service.len(),
            in_service_cores: cores.iter().sum(),
            in_service_by_generation: self.store.in_service_by_generation(),
            migrations: std::mem::take(&mut self.pending_migrations),
            tco_dollars,
            queued_jobs: self.queue.pending_len(),
            running_jobs: self.store.running_jobs(),
            completed_jobs: self.completed_total,
            be_progress_core_s: step_progress,
        });
        self.step_idx += 1;
        self.steps.last().expect("just pushed")
    }

    /// Consumes the simulator into its final result.
    pub fn into_result(self) -> FleetResult {
        FleetResult {
            policy: self.policy.name().to_string(),
            server_cores: self.store.servers().iter().map(|s| s.cores).collect(),
            server_generations: self.store.servers().iter().map(|s| s.generation).collect(),
            steps: self.steps,
            jobs: self.queue.into_jobs(),
            events: self.events,
        }
    }

    /// Runs the fleet to the configured horizon and returns the result
    /// (the static-fleet convenience loop over [`step_once`]).
    ///
    /// [`step_once`]: FleetSim::step_once
    pub fn run(mut self) -> FleetResult {
        while self.step_idx < self.config.steps {
            self.step_once();
        }
        self.into_result()
    }
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("servers", &self.runners.len())
            .field("policy", &self.policy.name())
            .field("step", &self.step_idx)
            .field("queued", &self.queue.pending_len())
            .finish()
    }
}

/// SLO violation fraction of the paper's single-server Heracles deployment
/// over the same diurnal trace: one websearch server colocating brain under
/// Heracles, stepped like a fleet member at phase 0.  This is the bar the
/// fleet scheduler must not regress — fleet-level placement may add and
/// remove jobs, but each server's controller still defends its SLO.
pub fn single_server_baseline_violations(config: &FleetConfig, server: &ServerConfig) -> f64 {
    let websearch = LcWorkload::websearch();
    let dram_model = OfflineDramModel::profile(&websearch, server);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), websearch.slo(), dram_model));
    let mut runner = ColoRunner::new(
        server.clone(),
        websearch,
        Some(BeWorkload::brain()),
        policy,
        config.colo.with_seed(config.seed ^ 0xBA5E),
    );
    let trace = DiurnalTrace::websearch_12h(config.seed);
    let step_duration = config.colo.window * config.windows_per_step as u64;
    let mut violating_steps = 0usize;
    for step_idx in 0..config.steps {
        let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);
        let load = {
            let period_s = trace.duration().as_secs_f64();
            let t = now.as_secs_f64() * config.time_compression % period_s;
            trace.load_at(SimTime::from_secs_f64(t))
        };
        let worst = (0..config.windows_per_step)
            .map(|_| runner.step(load).normalized_latency)
            .fold(0.0, f64::max);
        if worst > 1.0 {
            violating_steps += 1;
        }
    }
    violating_steps as f64 / config.steps.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            servers: 4,
            steps: 10,
            windows_per_step: 2,
            colo: ColoConfig { requests_per_window: 600, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_test()
        }
    }

    #[test]
    fn server_loads_span_the_diurnal_range() {
        let sim = FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::FirstFit);
        let t = SimTime::from_secs(60);
        let loads: Vec<f64> = (0..4).map(|i| sim.server_load(i, t)).collect();
        // With full spread the phase offsets put servers at different points
        // of the diurnal swing.
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "loads {loads:?}");
        for l in loads {
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn fleet_runs_place_serve_and_complete_jobs() {
        let result =
            FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        assert_eq!(result.steps.len(), 10);
        assert!(!result.jobs.is_empty(), "the stream produced no jobs");
        assert!(
            result.events.iter().any(|e| e.kind == FleetEventKind::Placed),
            "nothing was ever placed"
        );
        assert!(result.be_core_s_served() > 0.0, "no BE progress at all");
        // EMU must exceed pure LC load once BE work is being served.
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        // Step records are internally consistent.
        for step in &result.steps {
            assert!(step.fleet_emu >= 0.0 && step.worst_normalized_latency >= 0.0);
            assert!(step.running_jobs <= 4 * 2, "slot capacity exceeded");
            assert_eq!(step.in_service_servers, 4);
            assert_eq!(step.in_service_cores, 4 * 36);
            assert_eq!(step.migrations, 0);
            assert!(step.tco_dollars > 0.0, "a static fleet always costs money");
        }
        assert!(result.total_tco_dollars() > 0.0);
        assert!(result.tco_per_be_core_s().is_finite());
    }

    #[test]
    fn mixed_fleet_carries_per_generation_capacity_end_to_end() {
        let cfg = FleetConfig { mix: GenerationMix::mixed_datacenter(), ..tiny() };
        let result =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        // counts(4) = [1, 2, 1]: one Sandy Bridge, two Haswells, one Skylake.
        let mut cores = result.server_cores.clone();
        cores.sort_unstable();
        assert_eq!(cores, vec![16, 36, 36, 48]);
        assert_eq!(result.total_cores(), 136);
        assert_eq!(result.steps.len(), 10);
        assert_eq!(result.steps[0].in_service_by_generation, [1, 2, 1]);
        assert_eq!(result.server_generations.iter().filter(|&&g| g == 2).count(), 1);
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        assert!(result.mean_fleet_emu() > 0.0 && result.mean_fleet_emu() <= 2.0);
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let run = |seed| {
            let cfg = FleetConfig { seed, ..tiny() };
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::Random).run()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.events, b.events);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.steps, b.steps);
        let c = run(4);
        assert!(a.events != c.events || a.jobs != c.jobs, "different seeds identical");
    }

    #[test]
    fn baseline_violation_fraction_is_a_fraction() {
        let cfg = tiny();
        let v = single_server_baseline_violations(&cfg, &ServerConfig::default_haswell());
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn time_compression_sweeps_the_diurnal_cycle_within_a_run() {
        // Uncompressed, a server's load barely moves over a short run; with
        // the run compressed onto the whole 12-hour trace it must sweep a
        // large share of the diurnal swing.
        let horizon_s = 10.0 * 2.0; // steps × step seconds for `tiny`
        let compressed =
            FleetConfig { load_spread: 0.0, time_compression: 12.0 * 3600.0 / horizon_s, ..tiny() };
        let swing = |cfg: FleetConfig| {
            let sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
            let loads: Vec<f64> =
                (1..=10).map(|step| sim.server_load(0, SimTime::from_secs(step * 2))).collect();
            loads.iter().cloned().fold(0.0, f64::max)
                - loads.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(swing(FleetConfig { load_spread: 0.0, ..tiny() }) < 0.1);
        assert!(swing(compressed) > 0.4, "compressed run missed the diurnal swing");
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(tiny().validate().is_ok());
        let cases = [
            FleetConfig { servers: 0, ..tiny() },
            FleetConfig { be_slots_per_server: 0, ..tiny() },
            FleetConfig { steps: 0, ..tiny() },
            FleetConfig { windows_per_step: 0, ..tiny() },
            FleetConfig { load_spread: 1.5, ..tiny() },
            FleetConfig { load_spread: f64::NAN, ..tiny() },
            FleetConfig { time_compression: 0.0, ..tiny() },
            FleetConfig { time_compression: f64::INFINITY, ..tiny() },
            FleetConfig { mix: GenerationMix { older: 0.8, newer: 0.8 }, ..tiny() },
            FleetConfig {
                jobs: JobStreamConfig { arrivals_per_step: -1.0, ..JobStreamConfig::default() },
                ..tiny()
            },
            FleetConfig {
                jobs: JobStreamConfig {
                    demand_min_core_s: 10.0,
                    demand_max_core_s: 5.0,
                    ..JobStreamConfig::default()
                },
                ..tiny()
            },
            FleetConfig {
                jobs: JobStreamConfig { demand_alpha: 0.0, ..JobStreamConfig::default() },
                ..tiny()
            },
        ];
        for bad in cases {
            let err = bad.validate().expect_err("degenerate config accepted");
            assert!(!err.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "invalid fleet config")]
    fn constructors_reject_invalid_configs() {
        let cfg = FleetConfig { load_spread: 2.0, ..tiny() };
        FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
    }

    #[test]
    fn stepwise_api_matches_the_batch_run() {
        let cfg = tiny();
        let batch =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for expected_steps in 1..=cfg.steps {
            sim.step_once();
            assert_eq!(sim.current_step(), expected_steps);
        }
        let stepped = sim.into_result();
        assert_eq!(batch.steps, stepped.steps);
        assert_eq!(batch.events, stepped.events);
        assert_eq!(batch.jobs, stepped.jobs);
    }

    #[test]
    fn elastic_hooks_commission_migrate_and_retire() {
        let cfg = tiny();
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        // Run until some server hosts a job.
        let mut host = None;
        for _ in 0..cfg.steps {
            sim.step_once();
            if let Some(s) = sim.store().servers().iter().find(|s| !s.resident.is_empty()) {
                host = Some(s.id);
                break;
            }
        }
        let host = host.expect("no job was ever resident");
        let job = sim.store().server(host).resident[0];
        let before = sim.job(job).remaining_core_s;

        // Buy a Skylake box mid-run: dense id, true capacity, active state.
        let new_id = sim.add_server(Generation::Newer);
        assert_eq!(new_id, 4);
        assert_eq!(sim.store().server(new_id).cores, 48);
        assert!(sim.store().server(new_id).is_active());

        // Drain the host: its job migrates to the new box with its demand
        // preserved plus the migration surcharge.
        sim.begin_drain(host);
        sim.migrate_job(job, host, new_id, 15.0);
        assert_eq!(sim.store().server(new_id).resident, vec![job]);
        assert!((sim.job(job).remaining_core_s - before - 15.0).abs() < 1e-9);
        assert_eq!(sim.job(job).migrations, 1);
        assert!((sim.job(job).migration_overhead_core_s - 15.0).abs() < 1e-9);

        // The drained box retires; the next step runs without it.
        sim.retire_server(host);
        let step = *sim.step_once();
        assert_eq!(step.in_service_servers, 4, "4 originals - 1 retired + 1 bought");
        assert_eq!(step.migrations, 1);
        let result = sim.into_result();
        assert_eq!(result.server_cores.len(), 5);
        assert!(result.events.iter().any(|e| e.kind == FleetEventKind::Migrated));
        assert_eq!(result.migrations(), 1);
    }
}
