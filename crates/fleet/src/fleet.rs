//! The discrete-time fleet simulator.
//!
//! A fleet is N servers, each a leaf of one LC service under its own
//! per-server Heracles controller (a [`ColoRunner`] leaf, exactly the
//! harness the single-server experiments use), plus one fleet-level
//! scheduler placing a stream of BE jobs onto the servers' BE slots.  LC
//! demand belongs to the *services*, not the servers: a
//! [`ServiceCatalog`] owns each service's aggregate diurnal demand curve,
//! and the [`TrafficPlane`]'s [`LoadBalancer`](crate::LoadBalancer) routes
//! it onto the in-service leaves every step.  Services peak at different
//! phases (the catalog spreads them by `load_spread`), so a mixed-service
//! fleet spans the load range at any instant — some leaves are
//! colocation-friendly, others near their latency knee.
//!
//! The fleet may mix hardware generations (a [`GenerationMix`]) *and*
//! services (a [`ServiceMix`]): each (generation × service) cell runs its
//! own [`ServerConfig`] and capacity-scaled workload, and exposes its core
//! count, DRAM bandwidth and peak QPS to the placement store.  Fleet-level
//! EMU and the TCO comparison are core-weighted: a 48-core box at 80%
//! contributes three times the machine time of a 16-core box at the same
//! fraction.
//!
//! Each step the simulator:
//!
//! 1. routes every service's offered QPS across its in-service leaves via
//!    the traffic plane (demand is conserved: what a retired leaf used to
//!    serve lands on the survivors as added load),
//! 2. admits this step's job arrivals into the queue,
//! 3. dispatches queued jobs through the [`PlacementPolicy`] against the
//!    [`PlacementStore`],
//! 4. advances every in-service server by `windows_per_step` measurement
//!    windows — in parallel across servers via [`parallel_map_mut`], since
//!    servers only interact through the scheduler between steps,
//! 5. credits BE progress to resident jobs, completes jobs whose demand is
//!    served, and preempts/requeues jobs whose server kept BE disabled
//!    beyond the grace period (the controller's verdict is final: Heracles
//!    defends the local SLO, the scheduler routes around it),
//! 6. refreshes the store with each server's slack, EMU and admission
//!    verdict, and charges the step's amortized TCO to the in-service
//!    servers.
//!
//! The step loop is exposed piecewise ([`FleetSim::step_once`] /
//! [`FleetSim::into_result`]) so the elastic controller in
//! `heracles_autoscale` can interleave scale actions between steps:
//! [`FleetSim::add_server`] commissions a freshly purchased box mid-run,
//! [`FleetSim::begin_drain`] / [`FleetSim::retire_server`] decommission one,
//! and [`FleetSim::migrate_job`] live-migrates a resident job (preserving
//! its remaining demand and charging a migration cost in core·seconds)
//! instead of requeueing it from scratch.  [`FleetSim::run`] is the
//! static-fleet convenience loop.
//!
//! Everything is a pure function of the seed: the job stream, the traces,
//! every per-server RNG and the policy's tie-breaking all derive from it,
//! so identical seeds give identical schedules — and identical scale-action
//! sequences give identical elastic schedules.

use heracles_cluster::TcoModel;
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_energy::{
    hour_of_day, joules_to_dollars, EnergyConfig, EnergyMeter, PowerCapCoordinator,
};
use heracles_hw::ServerConfig;
use heracles_sim::{parallel_map_mut, Scheduler, SimDuration, SimRng, SimTime, WakeReason};
use heracles_telemetry::{AlertKind, Telemetry, TelemetryConfig, TraceEvent};
use heracles_workloads::{
    BeWorkload, LcKind, LcWorkload, ServiceCatalog, ServiceMix, NUM_SERVICES,
};
use serde::{Deserialize, Serialize};

use crate::generation::{Generation, GenerationMix};
use crate::job::{BeJob, JobId, JobQueue, JobStreamConfig};
use crate::metrics::{
    core_weighted_mean, server_step_tco_dollars, ControlPlaneProfile, FleetEvent, FleetEventKind,
    FleetResult, FleetStep, ServerPlaneProfile,
};
use crate::policy::{
    FirstFit, InterferenceAware, InterferenceModel, LeastLoaded, PlacementPolicy, PolicyKind,
    RandomPlacement,
};
use crate::store::{PlacementStore, ServerCapacity, ServerId, ShardingMode};
use crate::traffic::{BalancerKind, TrafficPlane};

/// Which server-plane stepping core a fleet run uses.
///
/// Both cores produce bit-identical [`FleetResult`]s (pinned by property
/// tests); they differ only in wall-clock cost.  `Stepped` is kept as the
/// oracle: every leaf simulates every measurement window in full.
/// `EventDriven` lets a leaf whose window inputs are provably unchanged
/// satisfy its windows through the [`ColoRunner`] steady-state fast path,
/// and tracks per-leaf wake reasons through the [`Scheduler`] for the
/// trace's wake-attribution section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimCore {
    /// Every in-service leaf simulates every window in full (the oracle).
    #[default]
    Stepped,
    /// Steady leaves fast-forward; wakes are tracked and attributed.
    EventDriven,
}

impl SimCore {
    /// The core's name as reported in benchmarks and traces.
    pub fn name(self) -> &'static str {
        match self {
            SimCore::Stepped => "stepped",
            SimCore::EventDriven => "event",
        }
    }
}

impl std::str::FromStr for SimCore {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stepped" => Ok(SimCore::Stepped),
            "event" | "event-driven" => Ok(SimCore::EventDriven),
            other => Err(format!("unknown sim core '{other}' (expected 'stepped' or 'event')")),
        }
    }
}

fn default_demand_hold_steps() -> usize {
    1
}

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers in the fleet.
    pub servers: usize,
    /// BE job slots per *reference-capacity* (Haswell, 36-core) server.
    /// Other generations scale this with their core count (rounded, floor
    /// of one): a 48-core box hosts proportionally more jobs, a 16-core box
    /// fewer.
    pub be_slots_per_server: usize,
    /// Number of scheduler steps to simulate.
    pub steps: usize,
    /// Measurement windows each server advances per step.
    pub windows_per_step: usize,
    /// Seed for the job stream, demand curves and every per-server random
    /// stream.
    pub seed: u64,
    /// Fraction of the diurnal period the *service* demand phases span
    /// (1.0 spreads the catalog's services across the whole cycle — search
    /// peaking while the cache tier is in its valley; 0.0 makes every
    /// service peak together).  Inert for a single-service catalog: leaves
    /// of one service share its demand curve through the balancer.
    pub load_spread: f64,
    /// How many seconds of diurnal (and TCO) wall time one simulated second
    /// represents (1.0 by default: no compression).
    ///
    /// A measurement window is already a statistical sample standing in for
    /// a longer production interval, so a run does not need to simulate
    /// every second of a 12-hour day to traverse its load cycle: with
    /// compression C, trace lookups advance C× faster and each step's
    /// amortized TCO charge covers C× the simulated wall time.  This is
    /// what lets a `--fast` elastic run sweep a whole diurnal peak and
    /// valley — the regime where autoscaling earns or loses its keep —
    /// in seconds of simulation.  Job demands and BE progress stay in
    /// simulated core·seconds, so the work ledger is unaffected.
    pub time_compression: f64,
    /// The blend of hardware generations across the fleet (homogeneous by
    /// default: every server runs the baseline configuration).
    pub mix: GenerationMix,
    /// The blend of LC services across the fleet (websearch-only by
    /// default).  The catalog built from this mix owns each service's
    /// aggregate demand; leaves are provisioned per service by error
    /// diffusion, interleaved with the generation assignment.
    pub services: ServiceMix,
    /// Which front-end load balancer routes each service's offered QPS
    /// across its leaves (capacity-weighted by default).
    pub balancer: BalancerKind,
    /// How the placement store organizes its leaf pools:
    /// per-(generation × service) shards by default, so placement plans and
    /// the traffic plane scan pool-local indices instead of the whole
    /// server table.  [`ShardingMode::Single`] keeps one flat shard — the
    /// pre-sharding layout, preserved for the shard-equivalence property
    /// tests (identical seeds must give identical results either way).
    pub sharding: ShardingMode,
    /// Whether dispatch plans each step's placements as one batched round
    /// ([`PlacementPolicy::begin_round`] scores the fleet once per step) —
    /// the default — or re-scans the fleet per job, exactly like the
    /// pre-sharding scheduler.  The per-job path is kept as the fleet-size
    /// benchmark's baseline arm and for the equivalence property tests;
    /// placements are identical either way.
    pub batch_dispatch: bool,
    /// Steps a server may sit occupied with BE disabled before its jobs are
    /// preempted and requeued.
    pub preemption_grace_steps: usize,
    /// The cost model behind the per-step amortized TCO series (the paper's
    /// case-study parameters by default).
    pub tco: TcoModel,
    /// Per-server harness configuration.
    pub colo: ColoConfig,
    /// The job arrival process.
    pub jobs: JobStreamConfig,
    /// The telemetry plane (disabled by default).  Enabling it records
    /// structured decision traces, metrics and phase timings without
    /// perturbing the run: telemetry-on and telemetry-off runs of the same
    /// seed produce bit-identical [`FleetResult`]s.
    pub telemetry: TelemetryConfig,
    /// Which server-plane stepping core runs the leaves (the stepped oracle
    /// by default).  Results are bit-identical either way; `EventDriven`
    /// fast-forwards steady leaves and attributes wakes.
    #[serde(default)]
    pub sim_core: SimCore,
    /// How many consecutive steps share one diurnal demand sample (1 by
    /// default: demand re-samples every step, the pre-event-core behavior).
    /// Holding demand for several steps is what lets leaves actually
    /// quiesce between inflections — the diurnal curves move slowly
    /// relative to a step, so re-sampling every step perturbs every leaf's
    /// load by a hair and wakes the whole fleet for nothing.  Affects the
    /// demand model identically under both sim cores.
    #[serde(default = "default_demand_hold_steps")]
    pub demand_hold_steps: usize,
    /// The energy plane (metering off, no power cap by default).  Metering
    /// is a pure read-only shadow like telemetry: energy-on and energy-off
    /// runs of the same seed produce bit-identical [`FleetResult`]s — the
    /// per-step energy columns are always populated either way, because
    /// they are a pure function of the simulation records.  A cluster
    /// power cap, by contrast, is an explicit behavioral knob: the
    /// [`PowerCapCoordinator`] splits the watt budget into per-leaf RAPL
    /// caps and (under a tight budget) stops BE admission fleet-wide.
    #[serde(default)]
    pub energy: EnergyConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 50,
            be_slots_per_server: 2,
            steps: 144,
            windows_per_step: 4,
            seed: 42,
            load_spread: 1.0,
            time_compression: 1.0,
            mix: GenerationMix::homogeneous(),
            services: ServiceMix::websearch_only(),
            balancer: BalancerKind::CapacityWeighted,
            sharding: ShardingMode::PerPool,
            batch_dispatch: true,
            preemption_grace_steps: 2,
            tco: TcoModel::paper_case_study(),
            colo: ColoConfig { requests_per_window: 1_200, ..ColoConfig::default() },
            jobs: JobStreamConfig { arrivals_per_step: 5.0, ..JobStreamConfig::default() },
            telemetry: TelemetryConfig::default(),
            sim_core: SimCore::Stepped,
            demand_hold_steps: default_demand_hold_steps(),
            energy: EnergyConfig::default(),
        }
    }
}

impl FleetConfig {
    /// A scaled-down configuration for tests and `--fast` runs.
    ///
    /// The window sample count stays at 1500 requests: the p99 estimate of
    /// a smaller sample is noisy enough that single-window excursions past
    /// the SLO dominate the violation counts, drowning the placement
    /// signal the fast configuration exists to demonstrate.  The seed is
    /// tuned, as it always has been: a compressed 45-step run sits inside
    /// the statistical margins the full-size experiments resolve cleanly,
    /// so the integration suites pin a seed whose draw is representative
    /// rather than averaging many runs on every `cargo test`.
    pub fn fast_test() -> Self {
        FleetConfig {
            servers: 8,
            steps: 45,
            windows_per_step: 3,
            seed: 69,
            colo: ColoConfig { requests_per_window: 1_500, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..Self::default()
        }
    }

    /// The `fast_test` configuration over the mixed-generation datacenter
    /// (a quarter older boxes, a quarter newer, the rest Haswell).
    pub fn fast_mixed() -> Self {
        FleetConfig { mix: GenerationMix::mixed_datacenter(), ..Self::fast_test() }
    }

    /// The `fast_test` configuration over the mixed-service front end
    /// (half websearch, the rest split between memkeyval and ml_cluster),
    /// with the run compressed onto one diurnal cycle so the phase-spread
    /// service demands actually sweep their curves — on an uncompressed
    /// short run every service would be frozen at one point of its trace.
    pub fn fast_services() -> Self {
        let base = Self::fast_test();
        let horizon_s =
            base.steps as f64 * base.windows_per_step as f64 * base.colo.window.as_secs_f64();
        FleetConfig {
            services: ServiceMix::mixed_frontend(),
            time_compression: 12.0 * 3600.0 / horizon_s,
            // Pinned independently of `fast_test`: the service-catalog
            // suites and the elastic suites are separate experiments, and
            // each pins the representative draw for its own claims.
            seed: 425,
            ..base
        }
    }

    /// Validates the configuration, returning a human-readable description
    /// of the first violation.
    ///
    /// Degenerate configurations (zero servers or steps, a phase spread
    /// outside `[0, 1]`, generation fractions that do not describe a fleet,
    /// an impossible job stream) used to slip through and silently produce
    /// empty or nonsensical runs; every constructor now rejects them with a
    /// message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("a fleet needs at least one server (servers = 0)".into());
        }
        if self.be_slots_per_server == 0 {
            return Err("servers need at least one BE slot (be_slots_per_server = 0)".into());
        }
        if self.steps == 0 || self.windows_per_step == 0 {
            return Err(format!(
                "steps must be positive (steps = {}, windows_per_step = {})",
                self.steps, self.windows_per_step
            ));
        }
        if !self.load_spread.is_finite() || !(0.0..=1.0).contains(&self.load_spread) {
            return Err(format!("load_spread must be in [0, 1] (got {})", self.load_spread));
        }
        if !self.time_compression.is_finite() || self.time_compression <= 0.0 {
            return Err(format!(
                "time_compression must be finite and positive (got {})",
                self.time_compression
            ));
        }
        self.mix.validate()?;
        self.services.validate()?;
        // Every active service must actually get a leaf: a skewed mix on a
        // small fleet can pass the share checks and still error-diffuse an
        // active service down to zero leaves — whose demand would then
        // silently never be offered, the exact evaporation the service
        // catalog exists to rule out.
        let leaf_counts = self.services.leaf_counts(self.servers);
        for (kind, (&share, &leaves)) in
            LcKind::all().into_iter().zip(self.services.shares().iter().zip(&leaf_counts))
        {
            if share > 0.0 && leaves == 0 {
                return Err(format!(
                    "a fleet of {} servers gives service {} (share {share}) zero leaves — \
                     grow the fleet or drop the service from the mix",
                    self.servers,
                    kind.name()
                ));
            }
        }
        if !self.jobs.arrivals_per_step.is_finite() || self.jobs.arrivals_per_step < 0.0 {
            return Err(format!(
                "arrivals_per_step must be finite and non-negative (got {})",
                self.jobs.arrivals_per_step
            ));
        }
        let (demand_min, demand_max) = (self.jobs.demand_min_core_s, self.jobs.demand_max_core_s);
        if !demand_min.is_finite()
            || !demand_max.is_finite()
            || demand_min <= 0.0
            || demand_max < demand_min
        {
            return Err(format!(
                "job demand bounds must be finite and satisfy 0 < min <= max \
                 (got {demand_min}..{demand_max})"
            ));
        }
        if !self.jobs.demand_alpha.is_finite() || self.jobs.demand_alpha <= 0.0 {
            return Err(format!(
                "demand_alpha must be finite and positive (got {})",
                self.jobs.demand_alpha
            ));
        }
        if self.demand_hold_steps == 0 {
            return Err("demand_hold_steps must be at least 1 (got 0)".into());
        }
        if !self.energy.pue.is_finite() || self.energy.pue < 1.0 {
            return Err(format!(
                "energy.pue must be finite and at least 1.0 (got {})",
                self.energy.pue
            ));
        }
        if let Some(cap) = self.energy.power_cap_w {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(format!(
                    "energy.power_cap_w must be finite and positive when set (got {cap})"
                ));
            }
        }
        self.telemetry.validate()?;
        Ok(())
    }

    /// Duration of one scheduler step.
    pub fn step_duration(&self) -> heracles_sim::SimDuration {
        self.colo.window * self.windows_per_step as u64
    }
}

/// Observation returned by one server's step (computed on a worker thread).
struct StepObservation {
    last_emu: f64,
    last_be_throughput: f64,
    worst_normalized_latency: f64,
    mean_normalized_latency: f64,
    progress_core_s: f64,
    be_enabled: bool,
    /// Windows this leaf simulated in full this step (0 ⇒ the leaf was
    /// quiescent: every window took the steady-state fast path).
    full_windows: u64,
    /// Windows satisfied by the fast path this step.
    fast_windows: u64,
    /// Package energy this leaf drew over the step's windows, in joules of
    /// *simulated* time (per-window watts × window seconds; the recorder
    /// scales by time compression when charging represented energy).
    energy_j: f64,
    /// The leaf's maximum per-window package power this step, in watts —
    /// the per-leaf term of the fleet's conservative peak-draw bound.
    max_power_w: f64,
}

/// The fleet simulator: servers, the traffic plane, scheduler state and
/// the job stream.
pub struct FleetSim {
    config: FleetConfig,
    /// The front-end traffic plane: routes each catalog service's offered
    /// QPS across its in-service leaves every step.
    plane: TrafficPlane,
    runners: Vec<ColoRunner>,
    store: PlacementStore,
    queue: JobQueue,
    policy: Box<dyn PlacementPolicy>,
    rng: SimRng,
    /// True per-(generation × service) (LC workload, hardware) profiles,
    /// indexed `[generation][service]` — the source of truth for mid-run
    /// purchases of cells absent from the initial fleet.
    profiles: Vec<Vec<(LcWorkload, ServerConfig)>>,
    /// One offline DRAM model per (generation × service) cell, profiled
    /// lazily: present cells at construction, purchased ones on first
    /// `add_server`.
    dram_models: Vec<Vec<Option<OfflineDramModel>>>,
    steps: Vec<FleetStep>,
    events: Vec<FleetEvent>,
    completed_total: usize,
    step_idx: usize,
    /// Migrations committed since the last recorded step (folded into the
    /// next [`FleetStep`]).
    pending_migrations: usize,
    /// Cumulative wall-clock cost of the control plane (routing + dispatch)
    /// — kept outside [`FleetStep`] so timing noise can never break the
    /// identical-seeds-identical-results determinism contract.
    profile: ControlPlaneProfile,
    /// Cumulative wall-clock cost of the parallel leaf-stepping phase and
    /// the woken/quiescent split — outside [`FleetStep`] for the same
    /// reason as `profile`.
    server_profile: ServerPlaneProfile,
    /// Typed per-leaf wake events (`EventDriven` core only): every producer
    /// of change schedules a wake here, and the step drains everything due
    /// to attribute why each woken leaf woke.
    wakes: Scheduler<ServerId>,
    /// Each leaf's routed load from the previous step, as exact bits
    /// (`EventDriven` core only; `None` until a leaf first routes).  A wake
    /// fires on any bit change — no epsilon: any change to the demand a
    /// leaf serves is a real change.
    prev_load_bits: Vec<Option<u64>>,
    /// The telemetry plane (`None` when `config.telemetry` is disabled):
    /// the flight recorder every traced component drains into, the metrics
    /// registry, and the per-phase wall-clock breakdown.  Like `profile`,
    /// it lives outside the bit-compared result types.
    telemetry: Option<Telemetry>,
    /// Per-server admission verdicts after the previous step (telemetry
    /// only): the baseline the next step diffs so only verdict flips reach
    /// the recorder.  Empty when telemetry is off.
    admission_baseline: Vec<bool>,
    /// Per-server clock offset (telemetry only): a leaf commissioned
    /// mid-run starts its local clock at zero, so its trace events are
    /// rebased by its commissioning time to land on the fleet clock.
    /// Empty when telemetry is off.
    runner_epochs: Vec<SimDuration>,
    /// The energy meter's ledgers (`None` unless `config.energy.metering`).
    /// A pure read-only shadow: it is charged from the same per-leaf
    /// observations the always-on step columns sum, so installing it
    /// changes no simulated outcome.
    meter: Option<EnergyMeter>,
    /// The cluster power-cap coordinator (`None` unless
    /// `config.energy.power_cap_w` is set).  Unlike the meter this is a
    /// behavioral knob: it imposes per-leaf RAPL caps and a fleet
    /// BE-admission throttle every step.
    cap_coordinator: Option<PowerCapCoordinator>,
}

impl FleetSim {
    /// True per-(generation × service) (LC workload, hardware) profiles,
    /// indexed `[generation][service]`.
    ///
    /// Every leaf serves its service with the traffic share scaled to its
    /// compute capacity (the balancers weight traffic by peak QPS, so a
    /// load fraction keeps meaning "fraction of what this box can serve").
    fn true_profiles(baseline: &ServerConfig) -> Vec<Vec<(LcWorkload, ServerConfig)>> {
        Generation::all()
            .into_iter()
            .map(|g| {
                let gen_config = g.server_config(baseline);
                let ratio = gen_config.total_cores() as f64 / baseline.total_cores() as f64;
                LcKind::all()
                    .into_iter()
                    .map(|svc| {
                        let base = LcWorkload::of_kind(svc);
                        let lc = if g == Generation::Haswell {
                            base
                        } else {
                            base.scaled_to_capacity(ratio)
                        };
                        (lc, gen_config.clone())
                    })
                    .collect()
            })
            .collect()
    }

    /// The catalog and the per-server generation/service assignments, each
    /// a pure function of the configuration — computed once per
    /// construction and threaded through, so the characterization, the
    /// DRAM-model cache and the store can never disagree about who serves
    /// what.
    fn provisioning(config: &FleetConfig) -> (ServiceCatalog, Vec<Generation>, Vec<LcKind>) {
        let generations = config.mix.assignments(config.servers);
        let catalog = ServiceCatalog::build(config.services, config.seed, config.load_spread);
        let services = catalog.assignments(config.servers);
        (catalog, generations, services)
    }

    /// The (generation, service) cells present in the initial assignment,
    /// in deterministic order — what the characterization measures (absent
    /// cells fall back to the model's cautious default until purchased).
    fn present_cells(generations: &[Generation], services: &[LcKind]) -> Vec<(usize, LcKind)> {
        let mut present: Vec<(usize, LcKind)> = Vec::new();
        for (g, s) in generations.iter().zip(services) {
            let cell = (g.index(), *s);
            if !present.contains(&cell) {
                present.push(cell);
            }
        }
        present.sort_by_key(|&(g, s)| (g, s.index()));
        present
    }

    /// Creates a fleet under one of the built-in placement policies.
    ///
    /// For [`PolicyKind::InterferenceAware`] this runs the §3.2
    /// characterization cells for the job mix's workloads (in parallel)
    /// to measure their hostility scores — once per distinct
    /// (hardware generation, LC service) cell in the fleet.
    pub fn new(config: FleetConfig, server_config: ServerConfig, policy: PolicyKind) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid fleet config: {e}"));
        let (catalog, generations, services) = Self::provisioning(&config);
        let policy: Box<dyn PlacementPolicy> = match policy {
            PolicyKind::Random => Box::new(RandomPlacement::default()),
            PolicyKind::FirstFit => Box::new(FirstFit::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded::default()),
            PolicyKind::InterferenceAware => {
                let probe = ColoConfig { requests_per_window: 1_000, ..ColoConfig::default() }
                    .with_seed(config.seed ^ 0xCAFE);
                let profiles = Self::true_profiles(&server_config);
                let cells: Vec<(usize, LcKind, LcWorkload, ServerConfig)> =
                    Self::present_cells(&generations, &services)
                        .into_iter()
                        .map(|(g, s)| {
                            let (lc, cfg) = &profiles[g][s.index()];
                            (g, s, lc.clone(), cfg.clone())
                        })
                        .collect();
                let model =
                    InterferenceModel::characterize(&config.jobs.mix.workloads(), &cells, &probe);
                Box::new(InterferenceAware::new(model))
            }
        };
        Self::build(config, server_config, policy, catalog, generations, services)
    }

    /// Creates a fleet under a caller-supplied placement policy.
    ///
    /// # Panics
    ///
    /// Panics if [`FleetConfig::validate`] rejects the configuration.
    pub fn with_policy(
        config: FleetConfig,
        server_config: ServerConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid fleet config: {e}"));
        let (catalog, generations, services) = Self::provisioning(&config);
        Self::build(config, server_config, policy, catalog, generations, services)
    }

    /// The shared constructor body: every entry point computes the
    /// provisioning exactly once and hands it in.
    fn build(
        config: FleetConfig,
        server_config: ServerConfig,
        policy: Box<dyn PlacementPolicy>,
        catalog: ServiceCatalog,
        generations: Vec<Generation>,
        services: Vec<LcKind>,
    ) -> Self {
        // The store's admission envelope mirrors the leaf controllers'
        // load hysteresis; fail fast if the two ever drift apart (placement
        // would silently dispatch jobs the controllers park at zero
        // progress — the bug class the admission predicate exists to stop).
        let leaf_config = HeraclesConfig::fast();
        assert_eq!(
            leaf_config.load_enable_threshold,
            crate::store::ADMISSION_LOAD_CEILING,
            "admission ceiling desynced from the controllers' enable threshold"
        );
        assert_eq!(
            leaf_config.load_disable_threshold,
            crate::store::ADMISSION_LOAD_DISABLE,
            "admission disable line desynced from the controllers' disable threshold"
        );
        let profiles = Self::true_profiles(&server_config);
        // One offline DRAM model per (generation × service) cell serves all
        // of its leaves (the paper shares one across the cluster too; the
        // controller tolerates the model error).  Absent cells get none
        // until an autoscaler purchases one.
        let present = Self::present_cells(&generations, &services);
        let dram_models: Vec<Vec<Option<OfflineDramModel>>> = Generation::all()
            .into_iter()
            .map(|g| {
                LcKind::all()
                    .into_iter()
                    .map(|svc| {
                        let (lc, gen_config) = &profiles[g.index()][svc.index()];
                        present
                            .contains(&(g.index(), svc))
                            .then(|| OfflineDramModel::profile(lc, gen_config))
                    })
                    .collect()
            })
            .collect();
        let telemetry = Telemetry::new(config.telemetry);
        let mut runners: Vec<ColoRunner> = (0..config.servers)
            .map(|i| {
                let (g, svc) = (generations[i].index(), services[i]);
                let (lc, gen_config) = &profiles[g][svc.index()];
                let dram_model =
                    dram_models[g][svc.index()].clone().expect("present cells have a DRAM model");
                let leaf_policy: Box<dyn ColocationPolicy> =
                    Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), dram_model));
                ColoRunner::new(
                    gen_config.clone(),
                    lc.clone(),
                    None,
                    leaf_policy,
                    config.colo.with_seed(config.seed ^ (0xF1EE7 + i as u64 * 7919)),
                )
            })
            .collect();
        if telemetry.is_some() {
            for runner in &mut runners {
                runner.set_trace(true);
            }
        }
        let capacities: Vec<ServerCapacity> = generations
            .iter()
            .zip(&services)
            .map(|(g, &svc)| {
                let (lc, gen_config) = &profiles[g.index()][svc.index()];
                ServerCapacity::for_service(
                    gen_config,
                    config.be_slots_per_server,
                    g.index(),
                    svc,
                    lc.peak_qps(),
                )
            })
            .collect();
        // Each service is provisioned with its initial pool's aggregate
        // peak: that is the demand denominator for the whole run — demand
        // is exogenous, so scale-in shrinks the pool but never the offered
        // traffic.
        let mut provisioned = [0.0f64; NUM_SERVICES];
        for cap in &capacities {
            provisioned[cap.service.index()] += cap.peak_qps;
        }
        let mut plane = TrafficPlane::new(
            catalog,
            config.balancer.build(),
            provisioned,
            config.time_compression,
        );
        if telemetry.is_some() {
            plane.set_trace(true);
        }
        let store = PlacementStore::heterogeneous_with_sharding(&capacities, config.sharding);
        let admission_baseline =
            if telemetry.is_some() { store.admission_verdicts() } else { Vec::new() };
        let runner_epochs =
            if telemetry.is_some() { vec![SimDuration::ZERO; runners.len()] } else { Vec::new() };
        FleetSim {
            plane,
            runners,
            store,
            queue: JobQueue::new(config.jobs, config.seed),
            policy,
            rng: SimRng::new(config.seed).fork(0x9C4ED),
            profiles,
            dram_models,
            steps: Vec::with_capacity(config.steps),
            events: Vec::new(),
            completed_total: 0,
            step_idx: 0,
            pending_migrations: 0,
            profile: ControlPlaneProfile::default(),
            server_profile: ServerPlaneProfile::default(),
            wakes: Scheduler::new(),
            prev_load_bits: vec![None; config.servers],
            telemetry,
            admission_baseline,
            runner_epochs,
            meter: config.energy.metering.then(EnergyMeter::new),
            cap_coordinator: config.energy.power_cap_w.map(PowerCapCoordinator::new),
            config,
        }
    }

    /// The configuration this fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The placement policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The scheduler's live view of the fleet.
    pub fn store(&self) -> &PlacementStore {
        &self.store
    }

    /// Every job the arrival stream has produced so far.
    pub fn jobs(&self) -> &[BeJob] {
        self.queue.jobs()
    }

    /// One job by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued.
    pub fn job(&self, id: JobId) -> &BeJob {
        self.queue.job(id)
    }

    /// Number of jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.pending_len()
    }

    /// Ids of the jobs currently waiting in the queue, in dispatch order.
    ///
    /// Between steps this is exactly the set of jobs that are neither
    /// resident nor complete, so controllers can scan the queue (bounded by
    /// its depth) instead of the whole job ledger (which grows with run
    /// length) when counting stranded work.
    pub fn pending_job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.queue.pending_ids()
    }

    /// Cumulative wall-clock cost of the control plane (routing + dispatch)
    /// over the steps run so far.  Pure observability: timings live outside
    /// [`FleetStep`] so they can never perturb the deterministic results.
    pub fn control_plane_profile(&self) -> &ControlPlaneProfile {
        &self.profile
    }

    /// Cumulative wall-clock cost of the server plane (the parallel
    /// leaf-stepping phase) over the steps run so far, with the
    /// woken/quiescent and full/fast-window split.  Pure observability,
    /// outside [`FleetStep`] like the control-plane profile.
    pub fn server_plane_profile(&self) -> &ServerPlaneProfile {
        &self.server_profile
    }

    /// Schedules a wake for leaf `id` at the end of the step about to run
    /// (a no-op under the stepped core, which never sleeps anyone).  Wakes
    /// are conservative attribution, not the correctness gate — each
    /// runner's own window-input comparison decides whether it may
    /// fast-forward — so waking a leaf that turns out steady costs nothing
    /// but the wake.
    fn wake(&mut self, id: ServerId, reason: WakeReason) {
        if self.config.sim_core != SimCore::EventDriven {
            return;
        }
        let due = SimTime::ZERO + self.config.step_duration() * (self.step_idx as u64 + 1);
        self.wakes.schedule(due, id, reason);
    }

    /// Charges autoscale signal-assembly seconds into this fleet's control
    /// plane profile (and its telemetry phase breakdown, when enabled).
    /// The elastic controller calls this instead of keeping a private
    /// accumulator, so every control-plane part is attributed exactly once
    /// in one place.
    pub fn charge_signals_s(&mut self, seconds: f64) {
        self.profile.charge_signals(seconds);
        if let Some(t) = self.telemetry.as_mut() {
            t.phases.charge("signals", seconds);
        }
    }

    /// The telemetry plane, when the configuration enabled it.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Mutable access to the telemetry plane (external controllers record
    /// their own metrics through it).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_mut()
    }

    /// Detaches the telemetry plane (for writing its artifacts after a run
    /// consumed the simulator's result separately).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    /// True when the telemetry plane is collecting.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Records `event` into the flight recorder, if telemetry is enabled
    /// (a no-op otherwise).  External controllers — the autoscaler — use
    /// this to thread their decision events into the same time-ordered
    /// stream as the fleet's own.
    pub fn emit_trace(&mut self, event: TraceEvent) {
        if let Some(t) = self.telemetry.as_mut() {
            t.recorder.record(event);
        }
    }

    /// Records the health plane's end-of-run summary — per-cell sketch
    /// percentiles and the top-k unhealthiest leaves — into the flight
    /// recorder at the current sim time.  A no-op when the health plane is
    /// off.  Callers writing trace artifacts invoke this once, after the
    /// last step and before [`FleetSim::take_telemetry`].
    pub fn emit_health_summary(&mut self) {
        let now = self.now();
        if let Some(t) = self.telemetry.as_mut() {
            if let Some(h) = t.health.as_ref() {
                let events = h.summary_events(now);
                t.recorder.extend(events);
            }
        }
    }

    /// The energy meter's ledgers, when `config.energy.metering` is on.
    pub fn meter(&self) -> Option<&EnergyMeter> {
        self.meter.as_ref()
    }

    /// Detaches the energy meter (for writing energy artifacts after a run
    /// consumed the simulator's result separately).
    pub fn take_meter(&mut self) -> Option<EnergyMeter> {
        self.meter.take()
    }

    /// Records the energy plane's end-of-run summary into the flight
    /// recorder at the current sim time: the fleet ledger with its
    /// conservation residual, one event per (service × generation) pool
    /// ledger, and the top-5 energy-hungriest leaves.  A no-op when
    /// metering or telemetry is off.  Callers writing trace artifacts
    /// invoke this once, after the last step and before
    /// [`FleetSim::take_telemetry`].
    pub fn emit_energy_summary(&mut self) {
        let now = self.now();
        let Some(meter) = self.meter.as_ref() else { return };
        let Some(t) = self.telemetry.as_mut() else { return };
        let fleet = meter.fleet();
        t.recorder.record(
            TraceEvent::new(now, "energy", "summary")
                .f64("fleet_joules", fleet.joules)
                .f64("fleet_dollars", fleet.dollars)
                .u64("observations", meter.observations())
                .f64("conservation_error_j", meter.conservation_error()),
        );
        for ((service, generation), ledger) in meter.pools() {
            t.recorder.record(
                TraceEvent::new(now, "energy", "pool")
                    .str("service", service)
                    .str("generation", generation)
                    .f64("joules", ledger.joules)
                    .f64("dollars", ledger.dollars),
            );
        }
        for (leaf, ledger) in meter.top_leaves(5) {
            t.recorder.record(
                TraceEvent::new(now, "energy", "top_leaf")
                    .u64("server", leaf)
                    .f64("joules", ledger.joules)
                    .f64("dollars", ledger.dollars),
            );
        }
    }

    /// Index of the next step to run (also: how many steps have run).
    pub fn current_step(&self) -> usize {
        self.step_idx
    }

    /// Simulated time at the end of the most recent step (`ZERO` before the
    /// first).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + self.config.step_duration() * self.step_idx as u64
    }

    /// The steps recorded so far.
    pub fn steps_so_far(&self) -> &[FleetStep] {
        &self.steps
    }

    /// The traffic plane routing the catalog's demand onto the fleet.
    pub fn traffic_plane(&self) -> &TrafficPlane {
        &self.plane
    }

    /// Server `id`'s *expected* LC load at `time`: its service's offered
    /// QPS divided by the service's current in-service pool capacity (the
    /// capacity-weighted estimate; a slack-aware balancer may skew the live
    /// per-leaf fractions, but it conserves the same total).  This is the
    /// forecast signal capacity planners use — the diurnal demand curves
    /// are known inputs.
    pub fn server_load(&self, id: ServerId, time: SimTime) -> f64 {
        let service = self.store.server(id).service;
        self.plane.expected_pool_load(service, time, &self.store)
    }

    /// The extra load fraction `dest` would absorb if `victim` left the
    /// fleet and its currently routed traffic were re-divided across the
    /// surviving leaves of its service (capacity-weighted).  Zero when the
    /// two serve different services — a drained websearch leaf's traffic
    /// never lands on a memkeyval box.
    ///
    /// This is what makes scale-in physical: the drain pricer adds this to
    /// a destination's projected load *before* ranking its headroom, and
    /// the autoscaling policies price the same quantity as SLO risk before
    /// shedding.
    pub fn reroute_load_increase(&self, victim: ServerId, dest: ServerId) -> f64 {
        let v = self.store.server(victim);
        let d = self.store.server(dest);
        if v.service != d.service || !v.in_service() {
            return 0.0;
        }
        // The store's per-service leaf index lists exactly the in-service
        // leaves of the victim's service, ascending by id — the same
        // members (and the same float summation order) as the full-fleet
        // filter it replaces, without touching the other services' leaves.
        let survivors: f64 = self
            .store
            .service_leaf_ids(v.service)
            .iter()
            .filter(|&&id| id != victim)
            .map(|&id| self.store.server(id).peak_qps)
            .sum();
        if survivors <= 0.0 {
            return 0.0;
        }
        // The victim's routed QPS lands on the survivors in proportion to
        // capacity; dest's share, as a fraction of its own peak, is the
        // victim's load scaled by the peak ratio.
        v.lc_load * v.peak_qps / survivors
    }

    /// The load fraction `victim`'s service pool would run at,
    /// `lead_steps` scheduler steps ahead, if `victim` were retired now
    /// and its share re-routed across the surviving leaves
    /// (capacity-weighted).  Infinite when the victim is its service's
    /// last leaf — there would be nowhere for the traffic to go.
    ///
    /// This is the SLO-risk price of a scale-in: a pool projected past the
    /// leaves' latency knee guarantees the re-routed share buys violations,
    /// and the autoscaling policies refuse to shed into it.
    pub fn post_retire_pool_load(&self, victim: ServerId, lead_steps: usize) -> f64 {
        let v = self.store.server(victim);
        let t =
            SimTime::ZERO + self.config.step_duration() * (self.step_idx + 1 + lead_steps) as u64;
        let remaining = self.store.in_service_peak_qps(v.service) - v.peak_qps;
        if remaining <= 0.0 {
            return f64::INFINITY;
        }
        self.plane.offered_qps(v.service, t) / remaining
    }

    /// Core-weighted mean LC load across in-service servers `lead_steps`
    /// scheduler steps ahead of the step about to run.  The diurnal trace
    /// is a known input (capacity planners have yesterday's traffic), so a
    /// predictive autoscaler may legitimately look ahead; `lead_steps = 0`
    /// is the load the very next step will sample.
    pub fn forecast_mean_load(&self, lead_steps: usize) -> f64 {
        let t =
            SimTime::ZERO + self.config.step_duration() * (self.step_idx + 1 + lead_steps) as u64;
        // The expected pool load is a per-*service* quantity: memoize it
        // once per service instead of recomputing the catalog lookup for
        // every leaf.  The accumulation order (and hence the float result)
        // is identical to the per-server scan this replaces.
        let mut pool_load: [Option<f64>; NUM_SERVICES] = [None; NUM_SERVICES];
        let (mut weighted, mut cores) = (0.0f64, 0.0f64);
        for s in self.store.servers().iter().filter(|s| s.in_service()) {
            let load = *pool_load[s.service.index()]
                .get_or_insert_with(|| self.plane.expected_pool_load(s.service, t, &self.store));
            weighted += load * s.cores as f64;
            cores += s.cores as f64;
        }
        if cores > 0.0 {
            weighted / cores
        } else {
            0.0
        }
    }

    /// The catalog service a newly purchased leaf should serve: the one
    /// whose in-service pool has been depleted the furthest below its
    /// provisioned capacity (ties break towards the lower service index).
    /// Scale-out thereby replenishes exactly the pool scale-in strained.
    fn most_depleted_service(&self) -> LcKind {
        let depletion = |k: LcKind| {
            let provisioned = self.plane.provisioned_peak_qps(k);
            if provisioned <= 0.0 {
                f64::INFINITY
            } else {
                self.store.in_service_peak_qps(k) / provisioned
            }
        };
        self.plane
            .catalog()
            .services()
            .iter()
            .map(|s| s.kind())
            .min_by(|&a, &b| {
                depletion(a)
                    .partial_cmp(&depletion(b))
                    .expect("depletion is finite or infinite, never NaN")
                    .then(a.index().cmp(&b.index()))
            })
            .expect("the catalog has at least one service")
    }

    /// Commissions a new server of `generation` (autoscaler scale-out) and
    /// returns its id.  The box arrives empty and active, its Heracles
    /// controller cold, and joins the leaf pool of the catalog's most
    /// depleted service — where the balancer immediately dilutes every
    /// sibling's load fraction.  Its DRAM model is profiled on first
    /// purchase of a (generation × service) cell absent from the initial
    /// fleet and cached for subsequent ones.
    pub fn add_server(&mut self, generation: Generation) -> ServerId {
        let id = self.runners.len();
        let gi = generation.index();
        let service = self.most_depleted_service();
        let si = service.index();
        if self.dram_models[gi][si].is_none() {
            let (lc, gen_config) = &self.profiles[gi][si];
            self.dram_models[gi][si] = Some(OfflineDramModel::profile(lc, gen_config));
        }
        let (lc, gen_config) = &self.profiles[gi][si];
        let dram_model = self.dram_models[gi][si].clone().expect("just profiled");
        let leaf_policy: Box<dyn ColocationPolicy> =
            Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), dram_model));
        self.runners.push(ColoRunner::new(
            gen_config.clone(),
            lc.clone(),
            None,
            leaf_policy,
            self.config.colo.with_seed(self.config.seed ^ (0xF1EE7 + id as u64 * 7919)),
        ));
        let capacity = ServerCapacity::for_service(
            gen_config,
            self.config.be_slots_per_server,
            gi,
            service,
            lc.peak_qps(),
        );
        let store_id = self.store.add_server(capacity);
        debug_assert_eq!(store_id, id, "store and runner ids diverged");
        self.prev_load_bits.push(None);
        self.wake(id, WakeReason::Lifecycle);
        if self.telemetry.is_some() {
            self.runners[id].set_trace(true);
            self.admission_baseline.push(true);
            // The fresh runner's clock starts at zero; rebase its events
            // by the commissioning time so they land on the fleet clock.
            self.runner_epochs.push(self.now().saturating_since(SimTime::ZERO));
            let now = self.now();
            let event = TraceEvent::new(now, "store", "server_added")
                .u64("server", id as u64)
                .u64("generation", gi as u64)
                .str("service", service.name())
                .u64("cores", self.store.server(id).cores as u64);
            self.emit_trace(event);
        }
        id
    }

    /// Marks a server as draining (autoscaler scale-in, phase one): no new
    /// BE work, residents to be migrated away.
    pub fn begin_drain(&mut self, id: ServerId) {
        self.store.begin_drain(id);
        self.wake(id, WakeReason::Lifecycle);
        if self.telemetry.is_some() {
            let event = TraceEvent::new(self.now(), "store", "drain_started")
                .u64("server", id as u64)
                .u64("residents", self.store.server(id).resident.len() as u64);
            self.emit_trace(event);
        }
    }

    /// Returns a draining server to active service (a cancelled scale-in).
    pub fn reactivate_server(&mut self, id: ServerId) {
        self.store.reactivate(id);
        self.wake(id, WakeReason::Lifecycle);
        if self.telemetry.is_some() {
            let event =
                TraceEvent::new(self.now(), "store", "reactivated").u64("server", id as u64);
            self.emit_trace(event);
        }
    }

    /// Retires a drained server (autoscaler scale-in, phase two): it stops
    /// stepping and stops costing TCO from the next step on, and its share
    /// of its service's traffic is re-routed onto the surviving leaves by
    /// the balancer from the next step's routing.
    ///
    /// # Panics
    ///
    /// Panics if the server still hosts resident jobs — retiring a box with
    /// unmigrated work is exactly the bug the drain protocol exists to
    /// prevent, and the autoscaler's property tests lean on this assert —
    /// or if it is the last in-service leaf of its service: the service's
    /// offered traffic would have nowhere to go, and demand conservation is
    /// the traffic plane's contract.
    pub fn retire_server(&mut self, id: ServerId) {
        let entry = self.store.server(id);
        if entry.in_service() {
            let service = entry.service;
            assert!(
                self.store.in_service_leaves(service) > 1,
                "cannot retire server {id}: it is the last in-service {} leaf",
                service.name()
            );
        }
        self.store.retire(id);
        if let Some(c) = self.cap_coordinator.as_mut() {
            c.forget(id as u64);
        }
        if self.telemetry.is_some() {
            let event = TraceEvent::new(self.now(), "store", "retired").u64("server", id as u64);
            self.emit_trace(event);
        }
    }

    /// Live-migrates a resident job from `from` to `to`, preserving its
    /// remaining demand and charging `cost_core_s` of migration overhead
    /// (moving memory/state costs destination compute, modeled in the same
    /// core·second currency as the demand itself).  The job never passes
    /// through the queue and keeps its first-start timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on `from`, `to` is retired or has
    /// no free slot, or the cost is negative or non-finite.
    pub fn migrate_job(&mut self, job: JobId, from: ServerId, to: ServerId, cost_core_s: f64) {
        assert!(
            cost_core_s.is_finite() && cost_core_s >= 0.0,
            "migration cost must be finite and non-negative (got {cost_core_s})"
        );
        assert!(self.store.server(to).in_service(), "migration target {to} is retired");
        self.store.migrate(job, from, to);
        let entry = self.queue.job_mut(job);
        entry.remaining_core_s += cost_core_s;
        entry.migration_overhead_core_s += cost_core_s;
        entry.migrations += 1;
        self.pending_migrations += 1;
        self.events.push(FleetEvent {
            step: self.step_idx,
            job,
            server: to,
            kind: FleetEventKind::Migrated,
        });
        self.sync_attachment(from);
        self.sync_attachment(to);
        self.wake(from, WakeReason::JobCompletion);
        self.wake(to, WakeReason::JobArrival);
        if let Some(t) = self.telemetry.as_mut() {
            t.metrics.inc("fleet.jobs_migrated");
        }
        if self.telemetry.is_some() {
            let event = TraceEvent::new(self.now(), "fleet", "migrate")
                .u64("job", job as u64)
                .u64("from", from as u64)
                .u64("to", to as u64)
                .f64("cost_core_s", cost_core_s);
            self.emit_trace(event);
        }
    }

    /// Preempts a resident job back to the front of the queue — the drain
    /// pricer's fallback when a migration costs more than the job has left.
    /// Counts as a preemption in the job ledger.
    pub fn requeue_job(&mut self, job: JobId, from: ServerId) {
        self.store.release(job, from);
        self.queue.requeue_front(job);
        self.events.push(FleetEvent {
            step: self.step_idx,
            job,
            server: from,
            kind: FleetEventKind::Preempted,
        });
        self.sync_attachment(from);
        self.wake(from, WakeReason::JobCompletion);
        if let Some(t) = self.telemetry.as_mut() {
            t.metrics.inc("fleet.jobs_preempted");
        }
        if self.telemetry.is_some() {
            let event = TraceEvent::new(self.now(), "fleet", "requeue")
                .u64("job", job as u64)
                .u64("from", from as u64);
            self.emit_trace(event);
        }
    }

    /// Points the runner's BE workload at its head resident job (or detaches
    /// it).  Jobs of the same kind share a profile, so a swap between them
    /// is a no-op.
    ///
    /// When several jobs share a server, the head job's profile stands in
    /// for the whole BE slice: the co-residents share the slice's
    /// throughput (see the progress crediting in [`FleetSim::step_once`])
    /// but do not add their own contention to the hardware model.  This
    /// approximation understates interference when a hostile job hides
    /// behind a benign head — one reason the informed policies' occupancy
    /// penalty steers away from double-packing, and the first candidate to
    /// refine if multi-slot fidelity starts to matter.
    fn sync_attachment(&mut self, id: ServerId) {
        let head: Option<BeWorkload> =
            self.store.server(id).resident.first().map(|&job| self.queue.job(job).workload.clone());
        let current = self.runners[id].be().map(|b| b.kind());
        if current != head.as_ref().map(|w| w.kind()) {
            self.runners[id].set_be(head);
        }
        let attached = self.runners[id].be().map(|b| b.kind());
        self.store.set_attached_kind(id, attached);
    }

    /// Runs one scheduler step over the in-service fleet and returns the
    /// recorded step.  Retired servers neither step nor cost TCO; an
    /// elastic controller interleaves scale actions between calls.
    pub fn step_once(&mut self) -> &FleetStep {
        let step_duration = self.config.step_duration();
        let window_s = self.config.colo.window.as_secs_f64();
        let step_idx = self.step_idx;
        let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);

        let in_service: Vec<ServerId> =
            self.store.servers().iter().filter(|s| s.in_service()).map(|s| s.id).collect();

        // 1. Route every service's offered QPS across its in-service
        // leaves.  Conservation is the traffic plane's contract — what a
        // retired leaf used to serve must land on the survivors, never
        // evaporate — so the imbalance is asserted every step, not only in
        // the property tests.
        // Telemetry is observation only: events for the step are buffered
        // here and committed to the flight recorder once, stably sorted by
        // simulated time (leaf controller events carry mid-step window
        // times; fleet-level events carry the step's end time), so the
        // recorded stream is non-decreasing in `t` — the trace schema's
        // contract.  None of this branches on wall-clock or perturbs the
        // seeded state, which is what keeps telemetry-on and telemetry-off
        // runs bit-identical.
        let tracing = self.telemetry.is_some();
        let mut step_events: Vec<TraceEvent> = Vec::new();
        // The health plane is taken out of the bundle for the step so its
        // observation taps can run alongside borrows of the store, plane
        // and queue; it is reinstalled in the final telemetry block.  Like
        // the recorder it is a read-only shadow: nothing below branches on
        // it, so health-on and health-off runs stay bit-identical.
        let mut health = self.telemetry.as_mut().and_then(|t| t.health.take());

        // 0. Cluster power capping (only when a budget is configured):
        // split the watt budget into per-leaf RAPL caps proportional to
        // TDP, and throttle BE admission fleet-wide when the budget is
        // tight — Algorithm 3's ordering lifted to the fleet: BE work is
        // shaved first (admission, then each leaf's DVFS walk-down), LC
        // guaranteed frequency is touched last, and only as far as each
        // leaf's own cap requires.  The cap participates in each leaf's
        // window-input signature, so a changed cap forces full simulation
        // windows — capping is a behavioral knob, never silently replayed.
        if let Some(mut coordinator) = self.cap_coordinator.take() {
            let roster: Vec<(u64, f64)> = in_service
                .iter()
                .map(|&id| (id as u64, self.runners[id].server().power().tdp_w()))
                .collect();
            let plan = coordinator.plan(&roster);
            if self.store.power_throttled() != plan.throttle_be {
                self.store.set_power_throttled(plan.throttle_be);
                if tracing {
                    step_events.push(
                        TraceEvent::new(now, "energy", "be_throttle")
                            .bool("throttled", plan.throttle_be)
                            .f64("budget_w", plan.budget_w)
                            .f64("total_tdp_w", plan.total_tdp_w),
                    );
                }
            }
            // Assignments are in roster order (= ascending in-service id),
            // or empty when the budget clears the whole roster's TDP.
            for (i, &id) in in_service.iter().enumerate() {
                let cap = plan.assignments.get(i).map(|a| {
                    debug_assert_eq!(a.leaf, id as u64, "cap plan order diverged");
                    a.cap_w
                });
                self.runners[id].set_package_cap_w(cap);
                if coordinator.note_applied(id as u64, cap) {
                    self.wake(id, WakeReason::Lifecycle);
                    if tracing {
                        step_events.push(
                            TraceEvent::new(now, "energy", "cap")
                                .u64("server", id as u64)
                                .bool("capped", cap.is_some())
                                .f64("cap_w", cap.unwrap_or(0.0))
                                .f64("budget_w", plan.budget_w),
                        );
                    }
                }
            }
            self.cap_coordinator = Some(coordinator);
        }

        let routing_started = std::time::Instant::now();
        // Demand is sampled on a hold grid: with `demand_hold_steps = n` the
        // diurnal curve is re-read every n steps and held flat in between,
        // so a steady fleet's routed loads are bit-stable across the held
        // span and the leaves can quiesce.  Routing itself still runs every
        // step (placements and drains shift shares mid-hold); only the
        // *time* the demand model sees is quantized.  `n = 1` reproduces
        // the old per-step sampling exactly.
        let hold = self.config.demand_hold_steps.max(1) as u64;
        let route_now = SimTime::ZERO + step_duration * ((step_idx as u64 / hold) * hold + 1);
        // Demand is sampled at the held `route_now`; trace events carry the
        // step's own end time so the recorded stream stays monotone.
        let routing = self.plane.route_held(route_now, now, &self.store);
        assert!(
            routing.max_imbalance() < 1e-9,
            "traffic plane failed to conserve demand: routed {:?} of offered {:?}",
            routing.routed_qps,
            routing.offered_qps
        );
        let loads: Vec<f64> = in_service.iter().map(|&id| routing.loads[id]).collect();
        for (&id, &load) in in_service.iter().zip(&loads) {
            self.store.set_load(id, load);
        }
        let routing_elapsed = routing_started.elapsed().as_secs_f64();
        self.profile.charge_routing(routing_elapsed);
        if let Some(t) = self.telemetry.as_mut() {
            t.phases.charge("routing", routing_elapsed);
            step_events.extend(self.plane.take_trace());
        }
        if let Some(h) = health.as_mut() {
            let (shed, _) = self.plane.divert_counts();
            h.observe_signal(AlertKind::DivertStorm, shed as f64 / in_service.len().max(1) as f64);
        }

        // 2. Arrivals.
        self.queue.arrive(now);

        // 3. Dispatch: FIFO with skipping, planned as one batch round — the
        // policy scores the fleet once per step instead of once per job.
        let dispatch_started = std::time::Instant::now();
        let pending = self.queue.take_pending();
        let round_jobs = pending.len();
        if self.config.batch_dispatch && !pending.is_empty() {
            self.policy.begin_round(&self.store);
        }
        let mut unplaced = Vec::new();
        for job_id in pending {
            match self.policy.place(self.queue.job(job_id), &self.store, &mut self.rng) {
                Some(server) => {
                    self.store.place(job_id, server);
                    let job = self.queue.job_mut(job_id);
                    if job.first_start.is_none() {
                        job.first_start = Some(now);
                    }
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server,
                        kind: FleetEventKind::Placed,
                    });
                    self.wake(server, WakeReason::JobArrival);
                    if let Some(t) = self.telemetry.as_mut() {
                        t.metrics.inc("fleet.jobs_placed");
                        let entry = self.store.server(server);
                        step_events.push(
                            TraceEvent::new(now, "fleet", "place")
                                .u64("job", job_id as u64)
                                .u64("server", server as u64)
                                .str("service", entry.service.name())
                                .u64("generation", entry.generation as u64)
                                .f64("load", entry.lc_load)
                                .f64("slack", entry.slack)
                                .u64("residents", entry.resident.len() as u64),
                        );
                    }
                }
                None => {
                    if let Some(t) = self.telemetry.as_mut() {
                        t.metrics.inc("fleet.jobs_unplaced");
                        step_events.push(
                            TraceEvent::new(now, "fleet", "unplaced").u64("job", job_id as u64),
                        );
                    }
                    unplaced.push(job_id);
                }
            }
        }
        if tracing && round_jobs > 0 {
            let mut event = TraceEvent::new(now, "fleet", "dispatch_round")
                .u64("jobs", round_jobs as u64)
                .u64("placed", (round_jobs - unplaced.len()) as u64)
                .u64("unplaced", unplaced.len() as u64)
                .bool("batched", self.config.batch_dispatch);
            if let Some(candidates) = self.policy.round_candidates() {
                event = event.u64("plan_candidates", candidates as u64);
            }
            step_events.push(event);
        }
        self.queue.restore_pending(unplaced);
        // Attachment sync commits the round's placements onto the runners,
        // so it is part of the dispatch phase — timing it outside used to
        // leak it from the control-plane attribution entirely.
        for &id in &in_service {
            self.sync_attachment(id);
        }
        let dispatch_elapsed = dispatch_started.elapsed().as_secs_f64();
        self.profile.charge_dispatch(dispatch_elapsed);
        if let Some(t) = self.telemetry.as_mut() {
            t.phases.charge("dispatch", dispatch_elapsed);
        }

        // 4. Advance every in-service server, in parallel.  Retired runners
        // stay in place (ids must remain dense) but never step.  The
        // mask-filtered runner iterator ascends by id — exactly the order
        // of `in_service` and `loads` (and of `observations` below), so
        // the zip aligns loads with their runners.
        let windows = self.config.windows_per_step;
        let in_service_mask: Vec<bool> =
            self.store.servers().iter().map(|s| s.in_service()).collect();
        // Event core: drain the wake scheduler up to this step's end and
        // fold in load deltas (exact bit comparison — no epsilon) to build
        // the per-leaf wake-reason bitmask.  The mask is *attribution*, not
        // the correctness gate: every leaf still advances through
        // [`ColoRunner::advance`], whose fast path re-verifies its own
        // steady-state preconditions bit-exactly and falls back to full
        // windows whenever any controller could act.  A leaf that stepped
        // fully without a scheduled reason is attributed to the
        // controller's own poll cadence below.
        let event_core = self.config.sim_core == SimCore::EventDriven;
        let mut wake_reasons: Vec<u8> = vec![0; self.runners.len()];
        if event_core {
            for (id, reason) in self.wakes.advance_to(now) {
                if in_service_mask.get(id).copied().unwrap_or(false) {
                    wake_reasons[id] |= 1 << reason.index();
                }
            }
            for (&id, &load) in in_service.iter().zip(&loads) {
                if self.prev_load_bits[id] != Some(load.to_bits()) {
                    wake_reasons[id] |= 1 << WakeReason::LoadDelta.index();
                }
                self.prev_load_bits[id] = Some(load.to_bits());
            }
        }
        let mut paired: Vec<(f64, &mut ColoRunner)> = self
            .runners
            .iter_mut()
            .enumerate()
            .filter(|(id, _)| in_service_mask[*id])
            .zip(loads.iter().copied())
            .map(|((_, runner), load)| (load, runner))
            .collect();
        debug_assert_eq!(paired.len(), in_service.len());
        let servers_started = std::time::Instant::now();
        let observations: Vec<StepObservation> = parallel_map_mut(&mut paired, |entry| {
            let (load, runner) = (entry.0, &mut *entry.1);
            let adv = runner.advance(load, windows, event_core);
            StepObservation {
                last_emu: adv.last_emu,
                last_be_throughput: adv.last_be_throughput,
                worst_normalized_latency: adv.worst_normalized_latency,
                mean_normalized_latency: adv.mean_normalized_latency,
                progress_core_s: adv.be_progress_core_s,
                be_enabled: adv.be_enabled,
                full_windows: adv.full_windows,
                fast_windows: adv.fast_windows,
                energy_j: adv.energy_j,
                max_power_w: adv.max_power_w,
            }
        });
        if tracing {
            // Drain each leaf controller's decision events, in ascending
            // server-id order (the parallel section buffered them inside
            // each policy, so drain order — not worker scheduling — fixes
            // the recorded order), annotating each with its server id.
            for (&id, entry) in in_service.iter().zip(paired.iter_mut()) {
                let epoch = self.runner_epochs.get(id).copied().unwrap_or(SimDuration::ZERO);
                for event in entry.1.take_trace() {
                    step_events.push(event.shifted(epoch).u64("server", id as u64));
                }
            }
        }
        let servers_elapsed = servers_started.elapsed().as_secs_f64();
        // Wake attribution: any leaf that ran a full window with no
        // scheduled reason woke on its controller's own poll cadence
        // (steady-state recertification, SLO deque warm-up, a sub-controller
        // changing an allocation).  After this pass every woken leaf has at
        // least one recorded reason — the trace report's invariant.
        let woken = observations.iter().filter(|o| o.full_windows > 0).count() as u64;
        let quiescent = observations.len() as u64 - woken;
        let full_windows_total: u64 = observations.iter().map(|o| o.full_windows).sum();
        let fast_windows_total: u64 = observations.iter().map(|o| o.fast_windows).sum();
        self.server_profile.charge_step(
            servers_elapsed,
            woken,
            quiescent,
            full_windows_total,
            fast_windows_total,
        );
        if event_core {
            for (&id, obs) in in_service.iter().zip(&observations) {
                if obs.full_windows > 0 && wake_reasons[id] == 0 {
                    wake_reasons[id] |= 1 << WakeReason::ControllerPoll.index();
                }
            }
            if tracing {
                for (&id, obs) in in_service.iter().zip(&observations) {
                    if obs.full_windows == 0 {
                        continue;
                    }
                    let mask = wake_reasons[id];
                    let names: Vec<&'static str> = WakeReason::ALL
                        .iter()
                        .filter(|r| mask & (1 << r.index()) != 0)
                        .map(|r| r.name())
                        .collect();
                    step_events.push(
                        TraceEvent::new(now, "fleet", "wake")
                            .u64("server", id as u64)
                            .str("reasons", &names.join("+"))
                            .u64("full_windows", obs.full_windows)
                            .u64("fast_windows", obs.fast_windows),
                    );
                }
            }
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.phases.charge("servers", servers_elapsed);
            if event_core {
                t.metrics.add("fleet.woken_leaf_steps", woken);
                t.metrics.add("fleet.quiescent_leaf_steps", quiescent);
            }
        }
        if event_core {
            if let Some(h) = health.as_mut() {
                h.observe_signal(
                    AlertKind::WakeStorm,
                    woken as f64 / (woken + quiescent).max(1) as f64,
                );
            }
        }
        let bookkeeping_started = std::time::Instant::now();

        // 5. Credit progress, complete, preempt; 6. refresh the store.
        let mut step_progress = 0.0;
        for (&id, obs) in in_service.iter().zip(&observations) {
            let resident = self.store.server(id).resident.clone();
            // Split the step's progress evenly across residents,
            // redistributing overshoot past a job's remaining demand to
            // its co-residents; only work actually absorbed counts as
            // served.
            let mut budget = obs.progress_core_s;
            if !resident.is_empty() {
                let mut open = resident.clone();
                while budget > 1e-9 && !open.is_empty() {
                    let share = budget / open.len() as f64;
                    budget = 0.0;
                    let mut still_open = Vec::with_capacity(open.len());
                    for job_id in open {
                        let job = self.queue.job_mut(job_id);
                        let take = share.min(job.remaining_core_s.max(0.0));
                        job.remaining_core_s -= take;
                        step_progress += take;
                        if take < share {
                            budget += share - take;
                        } else if !job.is_complete() {
                            still_open.push(job_id);
                        }
                    }
                    open = still_open;
                }
            }
            for &job_id in &resident {
                if self.queue.job(job_id).is_complete() {
                    self.queue.job_mut(job_id).completion = Some(now);
                    self.store.release(job_id, id);
                    self.completed_total += 1;
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server: id,
                        kind: FleetEventKind::Completed,
                    });
                    if let Some(t) = self.telemetry.as_mut() {
                        t.metrics.inc("fleet.jobs_completed");
                        step_events.push(
                            TraceEvent::new(now, "fleet", "complete")
                                .u64("job", job_id as u64)
                                .u64("server", id as u64),
                        );
                    }
                }
            }
            self.store.observe(
                id,
                now,
                1.0 - obs.worst_normalized_latency,
                obs.last_emu,
                obs.last_be_throughput,
                obs.be_enabled,
            );
            if self.store.server(id).disabled_streak > self.config.preemption_grace_steps {
                // The server's controller has kept BE parked past the
                // grace period: route the jobs elsewhere.  Requeue in
                // reverse so the earliest resident ends up frontmost.
                let evicted = self.store.server(id).resident.clone();
                for &job_id in evicted.iter().rev() {
                    self.store.release(job_id, id);
                    self.queue.requeue_front(job_id);
                    self.events.push(FleetEvent {
                        step: step_idx,
                        job: job_id,
                        server: id,
                        kind: FleetEventKind::Preempted,
                    });
                    if let Some(t) = self.telemetry.as_mut() {
                        t.metrics.inc("fleet.jobs_preempted");
                        step_events.push(
                            TraceEvent::new(now, "fleet", "preempt")
                                .u64("job", job_id as u64)
                                .u64("server", id as u64)
                                .u64(
                                    "disabled_streak",
                                    self.store.server(id).disabled_streak as u64,
                                ),
                        );
                    }
                }
            }
            self.sync_attachment(id);
        }

        // 7. Record the step.  Utilization aggregates are core-weighted
        // over the in-service fleet: on a mixed fleet a big box's windows
        // represent more machine time than a small box's, and a retired
        // box represents none.  The TCO column charges each in-service
        // server its amortized capex plus energy at its achieved EMU, over
        // the wall time the step *represents* (see
        // [`FleetConfig::time_compression`]).
        let step_s = window_s * windows as f64 * self.config.time_compression;
        let cores: Vec<usize> = in_service.iter().map(|&id| self.store.server(id).cores).collect();
        let emus: Vec<f64> = observations.iter().map(|o| o.last_emu).collect();
        let violating = observations.iter().filter(|o| o.worst_normalized_latency > 1.0).count();
        // Per-service aggregation: load is core-weighted within each
        // service's leaf pool, violations are counted per pool — the
        // auditable view of which service's SLO paid for a scheduling or
        // scale decision.
        let mut service_load_weighted = [0.0f64; NUM_SERVICES];
        let mut service_cores = [0.0f64; NUM_SERVICES];
        let mut violating_by_service = [0usize; NUM_SERVICES];
        // Energy is recorded unconditionally — like the TCO column it is a
        // pure function of the simulation records, so the metering knob
        // cannot perturb the result.  Each leaf's simulated joule integral
        // is scaled to the wall time the step *represents*, and the step's
        // $/kWh comes from the time-of-day tariff at the represented hour.
        let energy_price = self
            .config
            .energy
            .price
            .price_at(hour_of_day(now.as_secs_f64() * self.config.time_compression));
        let mut energy_joules = 0.0f64;
        let mut gen_energy_j = [0.0f64; 3];
        for ((&id, obs), &load) in in_service.iter().zip(&observations).zip(&loads) {
            let entry = self.store.server(id);
            let si = entry.service.index();
            service_load_weighted[si] += load * entry.cores as f64;
            service_cores[si] += entry.cores as f64;
            let leaf_joules = obs.energy_j * self.config.time_compression;
            energy_joules += leaf_joules;
            gen_energy_j[entry.generation] += leaf_joules;
            if let Some(m) = self.meter.as_mut() {
                let leaf_dollars =
                    joules_to_dollars(leaf_joules, energy_price, self.config.energy.pue);
                m.observe_leaf(
                    id as u64,
                    entry.service.name(),
                    Generation::all()[entry.generation].name(),
                    leaf_joules,
                    leaf_dollars,
                );
            }
            if let Some(h) = health.as_mut() {
                h.observe_cell(
                    si as u8,
                    entry.generation as u8,
                    obs.worst_normalized_latency,
                    obs.mean_normalized_latency,
                    load,
                );
                h.observe_leaf(id as u32, obs.worst_normalized_latency, obs.full_windows as f64);
            }
            if obs.worst_normalized_latency > 1.0 {
                violating_by_service[si] += 1;
                if tracing {
                    // The attribution record the trace report aggregates:
                    // every violating server-step names its service, its
                    // hardware generation and what the balancer did to it
                    // this step — the (service, generation, decision)
                    // cause cell.
                    step_events.push(
                        TraceEvent::new(now, "fleet", "violation")
                            .u64("server", id as u64)
                            .str("service", entry.service.name())
                            .u64("generation", entry.generation as u64)
                            .str("balancer", self.plane.decision(id))
                            .f64("normalized_latency", obs.worst_normalized_latency)
                            .f64("load", load)
                            .u64("residents", entry.resident.len() as u64),
                    );
                }
            }
        }
        let mut service_load = [0.0f64; NUM_SERVICES];
        for i in 0..NUM_SERVICES {
            if service_cores[i] > 0.0 {
                service_load[i] = service_load_weighted[i] / service_cores[i];
            }
        }
        let tco_dollars = in_service
            .iter()
            .zip(&observations)
            .map(|(&id, o)| {
                server_step_tco_dollars(
                    &self.config.tco,
                    self.store.server(id).cores,
                    o.last_emu,
                    step_s,
                )
            })
            .sum();
        let energy_dollars = joules_to_dollars(energy_joules, energy_price, self.config.energy.pue);
        // A conservative instantaneous bound: every leaf at its own worst
        // window simultaneously.  A power-capped run proves budget
        // compliance by keeping even this bound at or under the budget.
        let peak_power_w: f64 = observations.iter().map(|o| o.max_power_w).sum();
        self.steps.push(FleetStep {
            time: now,
            mean_load: core_weighted_mean(&loads, &cores),
            fleet_emu: core_weighted_mean(&emus, &cores),
            worst_normalized_latency: observations
                .iter()
                .map(|o| o.worst_normalized_latency)
                .fold(0.0, f64::max),
            violating_server_fraction: violating as f64 / in_service.len().max(1) as f64,
            violating_servers: violating,
            in_service_servers: in_service.len(),
            in_service_cores: cores.iter().sum(),
            in_service_by_generation: self.store.in_service_by_generation(),
            in_service_by_service: self.store.in_service_by_service(),
            offered_qps: routing.offered_qps,
            routed_qps: routing.routed_qps,
            service_load,
            violating_by_service,
            migrations: std::mem::take(&mut self.pending_migrations),
            tco_dollars,
            energy_joules,
            energy_dollars,
            peak_power_w,
            queued_jobs: self.queue.pending_len(),
            running_jobs: self.store.running_jobs(),
            completed_jobs: self.completed_total,
            be_progress_core_s: step_progress,
        });
        self.step_idx += 1;
        self.profile.steps += 1;
        if tracing {
            // Admission verdicts settle once the observe loop above has
            // absorbed the step: record only the flips against the previous
            // step's baseline (a purchased server extends the baseline as
            // admitting, matching its cold-start verdict).
            let verdicts = self.store.admission_verdicts();
            for (id, &verdict) in verdicts.iter().enumerate() {
                if self.admission_baseline.get(id).copied().unwrap_or(true) != verdict {
                    step_events.push(self.store.server(id).admission_trace(now));
                    if let Some(t) = self.telemetry.as_mut() {
                        t.metrics.inc("fleet.admission_flips");
                    }
                }
            }
            self.admission_baseline = verdicts;
        }
        let recorded = self.steps.last().expect("just pushed");
        if let Some(h) = health.as_mut() {
            // SLO burn: the fraction of in-service leaves violating this
            // step — the attainment complement the burn-rate windows watch.
            h.observe_signal(AlertKind::SloBurn, violating as f64 / in_service.len().max(1) as f64);
            // Queue censorship: pending jobs that have waited beyond the
            // horizon (8 steps) — work the dispatcher keeps skipping.
            let pending = self.queue.pending_len();
            if pending > 0 {
                let horizon = step_duration * 8;
                let censored = self
                    .queue
                    .pending_ids()
                    .filter(|&jid| now > self.queue.job(jid).arrival + horizon)
                    .count();
                h.observe_signal(AlertKind::QueueCensorship, censored as f64 / pending as f64);
            }
            // Per-service attainment: one event per populated service so a
            // report can draw the attainment curve without re-aggregating
            // violation events (which the recorder may have dropped).
            for (si, &leaves) in recorded.in_service_by_service.iter().enumerate() {
                if leaves == 0 {
                    continue;
                }
                let violating_s = violating_by_service[si];
                step_events.push(
                    TraceEvent::new(now, "health", "attainment")
                        .str("service", LcKind::all()[si].name())
                        .u64("leaves", leaves as u64)
                        .u64("violating", violating_s as u64)
                        .f64("attainment", 1.0 - violating_s as f64 / leaves as f64),
                );
            }
            let alert_events = h.step(now);
            if let Some(t) = self.telemetry.as_mut() {
                for event in &alert_events {
                    match event.kind() {
                        "firing" => t.metrics.inc("health.alerts_fired"),
                        "resolved" => t.metrics.inc("health.alerts_resolved"),
                        _ => {}
                    }
                }
            }
            step_events.extend(alert_events);
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.health = health.take();
        }
        if let Some(t) = self.telemetry.as_mut() {
            let mut step_event = TraceEvent::new(now, "fleet", "step")
                .u64("step", step_idx as u64)
                .u64("in_service", recorded.in_service_servers as u64)
                .u64("violating", recorded.violating_servers as u64)
                .f64("mean_load", recorded.mean_load)
                .f64("fleet_emu", recorded.fleet_emu)
                .f64("worst_normalized_latency", recorded.worst_normalized_latency)
                .u64("queued", recorded.queued_jobs as u64)
                .u64("running", recorded.running_jobs as u64)
                .u64("completed", recorded.completed_jobs as u64)
                .u64("migrations", recorded.migrations as u64)
                .f64("tco_dollars", recorded.tco_dollars)
                .f64("be_progress_core_s", recorded.be_progress_core_s)
                .f64("energy_joules", recorded.energy_joules)
                .f64("energy_dollars", recorded.energy_dollars)
                .f64("peak_power_w", recorded.peak_power_w)
                .f64("watts_sandy_bridge", gen_energy_j[0] / step_s)
                .f64("watts_haswell", gen_energy_j[1] / step_s)
                .f64("watts_skylake", gen_energy_j[2] / step_s)
                // The represented step duration the watts are averaged
                // over: trace timestamps tick raw simulation seconds, so a
                // time-compressed run needs this to integrate watts back
                // into joules (the doctor's conservation cross-check).
                .f64("step_represented_s", step_s);
            if event_core {
                step_event = step_event.u64("woken", woken).u64("quiescent", quiescent);
            }
            step_events.push(step_event);
            t.metrics.add("fleet.violation_server_steps", recorded.violating_servers as u64);
            t.metrics.set_gauge("fleet.queue_depth", recorded.queued_jobs as f64);
            t.metrics.set_gauge("fleet.running_jobs", recorded.running_jobs as f64);
            t.metrics.set_gauge("fleet.in_service_servers", recorded.in_service_servers as f64);
            t.metrics.observe("fleet.step_tco_dollars", recorded.tco_dollars);
            t.metrics.set_gauge_with_unit("fleet.peak_power_w", recorded.peak_power_w, "W");
            t.metrics.set_gauge_with_unit(
                "fleet.mean_power_w",
                recorded.energy_joules / step_s,
                "W",
            );
            t.metrics.observe("fleet.step_energy_joules", recorded.energy_joules);
            for obs in &observations {
                t.metrics.observe("fleet.normalized_latency", obs.worst_normalized_latency);
            }
            t.phases.charge("bookkeeping", bookkeeping_started.elapsed().as_secs_f64());
            t.phases.bump_steps();
            // One stable sort restores global time order: leaf events carry
            // mid-step window times, fleet events the step's end time, and
            // ties keep their emission order — deterministic whatever the
            // worker threads did.
            step_events.sort_by_key(|e| e.time());
            t.recorder.extend(step_events);
        }
        recorded
    }

    /// Consumes the simulator into its final result.
    pub fn into_result(self) -> FleetResult {
        FleetResult {
            policy: self.policy.name().to_string(),
            server_cores: self.store.servers().iter().map(|s| s.cores).collect(),
            server_generations: self.store.servers().iter().map(|s| s.generation).collect(),
            server_services: self.store.servers().iter().map(|s| s.service.index()).collect(),
            steps: self.steps,
            jobs: self.queue.into_jobs(),
            events: self.events,
        }
    }

    /// Runs the fleet to the configured horizon and returns the result
    /// (the static-fleet convenience loop over [`step_once`]).
    ///
    /// [`step_once`]: FleetSim::step_once
    pub fn run(mut self) -> FleetResult {
        while self.step_idx < self.config.steps {
            self.step_once();
        }
        self.into_result()
    }
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("servers", &self.runners.len())
            .field("policy", &self.policy.name())
            .field("step", &self.step_idx)
            .field("queued", &self.queue.pending_len())
            .finish()
    }
}

/// SLO violation fraction of the paper's single-server Heracles deployment
/// over the same diurnal trace: one websearch server colocating brain under
/// Heracles, stepped like a fleet member at phase 0.  This is the bar the
/// fleet scheduler must not regress — fleet-level placement may add and
/// remove jobs, but each server's controller still defends its SLO.
pub fn single_server_baseline_violations(config: &FleetConfig, server: &ServerConfig) -> f64 {
    let websearch = LcWorkload::websearch();
    let dram_model = OfflineDramModel::profile(&websearch, server);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), websearch.slo(), dram_model));
    let mut runner = ColoRunner::new(
        server.clone(),
        websearch,
        Some(BeWorkload::brain()),
        policy,
        config.colo.with_seed(config.seed ^ 0xBA5E),
    );
    // The same websearch demand curve a catalog fleet serves (phase 0), so
    // the baseline and the fleet face the identical traffic.
    let catalog = ServiceCatalog::build(ServiceMix::websearch_only(), config.seed, 0.0);
    let demand = catalog.get(LcKind::Websearch).expect("websearch catalog");
    let step_duration = config.colo.window * config.windows_per_step as u64;
    let mut violating_steps = 0usize;
    for step_idx in 0..config.steps {
        let now = SimTime::ZERO + step_duration * (step_idx as u64 + 1);
        let load = demand.demand_fraction(now.as_secs_f64() * config.time_compression);
        let worst = (0..config.windows_per_step)
            .map(|_| runner.step(load).normalized_latency)
            .fold(0.0, f64::max);
        if worst > 1.0 {
            violating_steps += 1;
        }
    }
    violating_steps as f64 / config.steps.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            servers: 4,
            steps: 10,
            windows_per_step: 2,
            colo: ColoConfig { requests_per_window: 600, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_test()
        }
    }

    #[test]
    fn leaves_of_one_service_share_their_load_and_services_span_the_range() {
        // Single service: the balancer gives every leaf the same fraction
        // of its own capacity — the fleet moves with its service.
        let sim = FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::FirstFit);
        let t = SimTime::from_secs(60);
        let loads: Vec<f64> = (0..4).map(|i| sim.server_load(i, t)).collect();
        for l in &loads {
            assert!((l - loads[0]).abs() < 1e-12, "websearch leaves diverged: {loads:?}");
            assert!((0.0..=1.0).contains(l));
        }

        // Mixed services with full phase spread: the fleet spans the load
        // range because the *services* peak at different times.
        let cfg = FleetConfig { services: ServiceMix::mixed_frontend(), ..tiny() };
        let sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
        let loads: Vec<f64> = (0..4).map(|i| sim.server_load(i, t)).collect();
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "mixed-service loads did not span the range: {loads:?}");
    }

    #[test]
    fn fleet_runs_place_serve_and_complete_jobs() {
        let result =
            FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        assert_eq!(result.steps.len(), 10);
        assert!(!result.jobs.is_empty(), "the stream produced no jobs");
        assert!(
            result.events.iter().any(|e| e.kind == FleetEventKind::Placed),
            "nothing was ever placed"
        );
        assert!(result.be_core_s_served() > 0.0, "no BE progress at all");
        // EMU must exceed pure LC load once BE work is being served.
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        // Step records are internally consistent.
        for step in &result.steps {
            assert!(step.fleet_emu >= 0.0 && step.worst_normalized_latency >= 0.0);
            assert!(step.running_jobs <= 4 * 2, "slot capacity exceeded");
            assert_eq!(step.in_service_servers, 4);
            assert_eq!(step.in_service_cores, 4 * 36);
            assert_eq!(step.migrations, 0);
            assert!(step.tco_dollars > 0.0, "a static fleet always costs money");
        }
        assert!(result.total_tco_dollars() > 0.0);
        assert!(result.tco_per_be_core_s().is_finite());
    }

    #[test]
    fn mixed_fleet_carries_per_generation_capacity_end_to_end() {
        let cfg = FleetConfig { mix: GenerationMix::mixed_datacenter(), ..tiny() };
        let result =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        // counts(4) = [1, 2, 1]: one Sandy Bridge, two Haswells, one Skylake.
        let mut cores = result.server_cores.clone();
        cores.sort_unstable();
        assert_eq!(cores, vec![16, 36, 36, 48]);
        assert_eq!(result.total_cores(), 136);
        assert_eq!(result.steps.len(), 10);
        assert_eq!(result.steps[0].in_service_by_generation, [1, 2, 1]);
        assert_eq!(result.server_generations.iter().filter(|&&g| g == 2).count(), 1);
        assert!(result.mean_fleet_emu() >= result.mean_lc_load());
        assert!(result.mean_fleet_emu() > 0.0 && result.mean_fleet_emu() <= 2.0);
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let run = |seed| {
            let cfg = FleetConfig { seed, ..tiny() };
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::Random).run()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.events, b.events);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.steps, b.steps);
        let c = run(4);
        assert!(a.events != c.events || a.jobs != c.jobs, "different seeds identical");
    }

    #[test]
    fn baseline_violation_fraction_is_a_fraction() {
        let cfg = tiny();
        let v = single_server_baseline_violations(&cfg, &ServerConfig::default_haswell());
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn time_compression_sweeps_the_diurnal_cycle_within_a_run() {
        // Uncompressed, a server's load barely moves over a short run; with
        // the run compressed onto the whole 12-hour trace it must sweep a
        // large share of the diurnal swing.
        let horizon_s = 10.0 * 2.0; // steps × step seconds for `tiny`
        let compressed =
            FleetConfig { load_spread: 0.0, time_compression: 12.0 * 3600.0 / horizon_s, ..tiny() };
        let swing = |cfg: FleetConfig| {
            let sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
            let loads: Vec<f64> =
                (1..=10).map(|step| sim.server_load(0, SimTime::from_secs(step * 2))).collect();
            loads.iter().cloned().fold(0.0, f64::max)
                - loads.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(swing(FleetConfig { load_spread: 0.0, ..tiny() }) < 0.1);
        assert!(swing(compressed) > 0.4, "compressed run missed the diurnal swing");
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(tiny().validate().is_ok());
        let cases = [
            FleetConfig { servers: 0, ..tiny() },
            FleetConfig { be_slots_per_server: 0, ..tiny() },
            FleetConfig { steps: 0, ..tiny() },
            FleetConfig { windows_per_step: 0, ..tiny() },
            FleetConfig { load_spread: 1.5, ..tiny() },
            FleetConfig { load_spread: f64::NAN, ..tiny() },
            FleetConfig { time_compression: 0.0, ..tiny() },
            FleetConfig { time_compression: f64::INFINITY, ..tiny() },
            FleetConfig { mix: GenerationMix { older: 0.8, newer: 0.8 }, ..tiny() },
            FleetConfig {
                services: ServiceMix { websearch: 0.5, ml_cluster: 0.0, memkeyval: 0.0 },
                ..tiny()
            },
            FleetConfig {
                // Three services cannot fit on a two-server fleet.
                servers: 2,
                services: ServiceMix::mixed_frontend(),
                ..tiny()
            },
            FleetConfig {
                // A heavily skewed mix on a small fleet error-diffuses the
                // minority services down to zero leaves: their demand
                // would silently never be offered.
                servers: 6,
                services: ServiceMix { websearch: 0.9, ml_cluster: 0.05, memkeyval: 0.05 },
                ..tiny()
            },
            FleetConfig {
                jobs: JobStreamConfig { arrivals_per_step: -1.0, ..JobStreamConfig::default() },
                ..tiny()
            },
            FleetConfig {
                jobs: JobStreamConfig {
                    demand_min_core_s: 10.0,
                    demand_max_core_s: 5.0,
                    ..JobStreamConfig::default()
                },
                ..tiny()
            },
            FleetConfig {
                jobs: JobStreamConfig { demand_alpha: 0.0, ..JobStreamConfig::default() },
                ..tiny()
            },
        ];
        for bad in cases {
            let err = bad.validate().expect_err("degenerate config accepted");
            assert!(!err.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "invalid fleet config")]
    fn constructors_reject_invalid_configs() {
        let cfg = FleetConfig { load_spread: 2.0, ..tiny() };
        FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
    }

    #[test]
    fn retiring_a_leaf_reroutes_its_share_onto_the_survivors() {
        // No BE arrivals: this test watches pure LC traffic movement.
        let cfg = FleetConfig {
            jobs: JobStreamConfig { arrivals_per_step: 0.0, ..JobStreamConfig::default() },
            ..tiny()
        };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
        let before = *sim.step_once();
        assert!(
            (before.routed_qps[0] - before.offered_qps[0]).abs() < 1e-6 * before.offered_qps[0],
            "routed {:?} != offered {:?}",
            before.routed_qps,
            before.offered_qps
        );
        let survivor_load = sim.store().server(1).lc_load;
        // Retire one of four websearch leaves: the remaining three absorb
        // its share, so each survivor's load rises by a third.
        sim.begin_drain(0);
        sim.retire_server(0);
        let after = *sim.step_once();
        let rerouted = sim.store().server(1).lc_load;
        assert!(
            rerouted > survivor_load * 1.2,
            "survivor load {rerouted:.3} did not absorb the retired share ({survivor_load:.3})"
        );
        // Conservation: the routed volume did not shrink with the fleet.
        assert!(
            (after.routed_qps[0] - after.offered_qps[0]).abs() < 1e-6 * after.offered_qps[0],
            "routed {:?} != offered {:?}",
            after.routed_qps,
            after.offered_qps
        );
        assert_eq!(after.in_service_by_service, [3, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "last in-service websearch leaf")]
    fn retiring_the_last_leaf_of_a_service_panics() {
        let cfg = FleetConfig { servers: 4, services: ServiceMix::mixed_frontend(), ..tiny() };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
        // mixed_frontend over 4 servers: two websearch leaves, one each of
        // the others.  Retiring both websearch leaves must be refused at
        // the second.
        let ws: Vec<ServerId> = sim
            .store()
            .servers()
            .iter()
            .filter(|s| s.service == LcKind::Websearch)
            .map(|s| s.id)
            .collect();
        assert_eq!(ws.len(), 2);
        sim.begin_drain(ws[0]);
        sim.retire_server(ws[0]);
        sim.begin_drain(ws[1]);
        sim.retire_server(ws[1]);
    }

    #[test]
    fn purchased_servers_join_the_most_depleted_pool() {
        let cfg = FleetConfig { servers: 8, services: ServiceMix::mixed_frontend(), ..tiny() };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
        // Retire one memkeyval leaf: its pool is now the furthest below
        // its provisioned capacity, so the next purchase must replenish it
        // — even though websearch has the lower service index.
        let kv: Vec<ServerId> = sim
            .store()
            .servers()
            .iter()
            .filter(|s| s.service == LcKind::Memkeyval)
            .map(|s| s.id)
            .collect();
        assert!(kv.len() >= 2, "{kv:?}");
        sim.begin_drain(kv[0]);
        sim.retire_server(kv[0]);
        let id = sim.add_server(Generation::Haswell);
        assert_eq!(sim.store().server(id).service, LcKind::Memkeyval);
    }

    #[test]
    fn stepwise_api_matches_the_batch_run() {
        let cfg = tiny();
        let batch =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for expected_steps in 1..=cfg.steps {
            sim.step_once();
            assert_eq!(sim.current_step(), expected_steps);
        }
        let stepped = sim.into_result();
        assert_eq!(batch.steps, stepped.steps);
        assert_eq!(batch.events, stepped.events);
        assert_eq!(batch.jobs, stepped.jobs);
    }

    #[test]
    fn elastic_hooks_commission_migrate_and_retire() {
        let cfg = tiny();
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        // Run until some server hosts a job.
        let mut host = None;
        for _ in 0..cfg.steps {
            sim.step_once();
            if let Some(s) = sim.store().servers().iter().find(|s| !s.resident.is_empty()) {
                host = Some(s.id);
                break;
            }
        }
        let host = host.expect("no job was ever resident");
        let job = sim.store().server(host).resident[0];
        let before = sim.job(job).remaining_core_s;

        // Buy a Skylake box mid-run: dense id, true capacity, active state.
        let new_id = sim.add_server(Generation::Newer);
        assert_eq!(new_id, 4);
        assert_eq!(sim.store().server(new_id).cores, 48);
        assert!(sim.store().server(new_id).is_active());

        // Drain the host: its job migrates to the new box with its demand
        // preserved plus the migration surcharge.
        sim.begin_drain(host);
        sim.migrate_job(job, host, new_id, 15.0);
        assert_eq!(sim.store().server(new_id).resident, vec![job]);
        assert!((sim.job(job).remaining_core_s - before - 15.0).abs() < 1e-9);
        assert_eq!(sim.job(job).migrations, 1);
        assert!((sim.job(job).migration_overhead_core_s - 15.0).abs() < 1e-9);

        // The drained box retires; the next step runs without it.
        sim.retire_server(host);
        let step = *sim.step_once();
        assert_eq!(step.in_service_servers, 4, "4 originals - 1 retired + 1 bought");
        assert_eq!(step.migrations, 1);
        let result = sim.into_result();
        assert_eq!(result.server_cores.len(), 5);
        assert!(result.events.iter().any(|e| e.kind == FleetEventKind::Migrated));
        assert_eq!(result.migrations(), 1);
    }

    #[test]
    fn plain_fleet_runs_charge_no_signal_time() {
        // Signal assembly belongs to the autoscaler; a standalone FleetSim
        // must never charge it, and its parts must still sum to the total.
        let mut sim = FleetSim::new(tiny(), ServerConfig::default_haswell(), PolicyKind::FirstFit);
        for _ in 0..tiny().steps {
            sim.step_once();
        }
        let profile = sim.control_plane_profile();
        assert_eq!(profile.signals_s, 0.0);
        assert_eq!(profile.steps, tiny().steps);
        assert!(profile.routing_s > 0.0 && profile.dispatch_s > 0.0);
        let total = profile.control_plane_s();
        assert!((total - profile.recorded_total_s()).abs() <= 1e-9 * total.max(1e-12));
    }

    #[test]
    fn traced_runs_emit_decision_events_and_metrics() {
        let cfg = FleetConfig { telemetry: TelemetryConfig::enabled(), ..tiny() };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        let telemetry = sim.take_telemetry().expect("telemetry was enabled");
        let events: Vec<&TraceEvent> = telemetry.recorder.iter().collect();
        assert!(!events.is_empty(), "a traced run recorded nothing");
        // Time never decreases along the trace.
        for pair in events.windows(2) {
            assert!(pair[1].time() >= pair[0].time(), "trace time went backwards");
        }
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        for required in ["route", "conservation", "dispatch_round", "place", "step"] {
            assert!(kinds.contains(required), "no {required:?} event in {kinds:?}");
        }
        assert!(telemetry.metrics.counter("fleet.jobs_placed") > 0);
        let jsonl = telemetry.trace_jsonl(&[("policy", "least-loaded".to_string())]);
        heracles_telemetry::validate_trace_jsonl(&jsonl).expect("trace fails its own schema");
    }
}
