//! The traffic plane: the cluster-wide front-end load balancer that routes
//! each LC service's aggregate diurnal demand onto the fleet's leaves.
//!
//! The paper assumes such a balancer exists (§5.3's cluster experiment
//! divides the websearch trace across its leaves); earlier versions of this
//! fleet inverted that — every server privately owned a phase-offset copy
//! of the trace — which made two things impossible to model.  First, LC
//! capacity was not conserved: a retired server's share of the traffic
//! silently evaporated instead of landing on the survivors, so aggressive
//! scale-in could never hurt the SLO.  Second, a fleet could only ever
//! serve one service.  The [`TrafficPlane`] fixes both: the
//! [`ServiceCatalog`] owns each service's aggregate offered QPS, and a
//! pluggable [`LoadBalancer`] distributes it across that service's
//! in-service leaves every step — when a leaf drains out, its share is
//! re-routed onto the survivors as *added load* that can push them over
//! their latency knee.
//!
//! Conservation is the plane's contract: every step, the sum of per-leaf
//! routed QPS equals the service's offered QPS exactly (to floating-point
//! tolerance), as long as the service has at least one in-service leaf —
//! which is why the fleet refuses to retire a service's last leaf.

use heracles_sim::SimTime;
use heracles_telemetry::{TraceEvent, TraceLog};
use heracles_workloads::{LcKind, ServiceCatalog, NUM_SERVICES};
use serde::{Deserialize, Serialize};

use crate::store::{PlacementStore, ServerId};

/// What a balancer sees of one in-service leaf when dividing a service's
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafView {
    /// The leaf's server id.
    pub id: ServerId,
    /// The leaf's peak QPS for its service (capacity weight).
    pub peak_qps: f64,
    /// Latency slack observed over the most recent step (1 = far from the
    /// SLO, 0 = at it, negative = violating).  Cold leaves estimate it from
    /// their last routed load.
    pub slack: f64,
    /// The load fraction routed to this leaf last step.
    pub load: f64,
}

/// A cluster-wide front-end load balancer: divides one service's offered
/// QPS across its in-service leaves.
///
/// Implementations must be deterministic (identical inputs give identical
/// routes — the routing property tests pin this) and must conserve demand:
/// the returned per-leaf QPS assignments sum to `offered_qps` whenever
/// `leaves` is non-empty.
pub trait LoadBalancer: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Divides `offered_qps` of `service` across `leaves`, returning one
    /// routed QPS per leaf (aligned with `leaves`).
    fn route(&mut self, service: LcKind, offered_qps: f64, leaves: &[LeafView]) -> Vec<f64>;
}

/// Divides `offered_qps` proportionally to `weights` (the shared kernel of
/// the built-in balancers).  Returns one assignment per weight; conservation
/// is exact up to floating point because the shares are normalized by the
/// weight sum.
fn route_by_weight(offered_qps: f64, weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Degenerate weights (every leaf at zero): fall back to an even
        // split so the demand still lands somewhere.
        let even = offered_qps / weights.len().max(1) as f64;
        return vec![even; weights.len()];
    }
    weights.iter().map(|w| offered_qps * w / total).collect()
}

/// Capacity-weighted routing: every leaf receives traffic in proportion to
/// its peak QPS, so each leaf of a service runs at the same fraction of its
/// own capacity (the front-end behaviour the heterogeneous-fleet work
/// already assumed).  Blind to slack: when the pool shrinks, every survivor
/// absorbs its proportional slice of the victim's share regardless of how
/// close it already is to its knee.
#[derive(Debug, Default)]
pub struct CapacityWeighted;

impl LoadBalancer for CapacityWeighted {
    fn name(&self) -> &str {
        "capacity-weighted"
    }

    fn route(&mut self, _service: LcKind, offered_qps: f64, leaves: &[LeafView]) -> Vec<f64> {
        let weights: Vec<f64> = leaves.iter().map(|l| l.peak_qps).collect();
        route_by_weight(offered_qps, &weights)
    }
}

/// Latency slack below which [`SlackAware`] starts diverting a leaf's
/// traffic: within this margin of the SLO a leaf is *distressed*, and the
/// balancer sheds part of its share onto healthier siblings.
const SLACK_DISTRESS_FLOOR: f64 = 0.10;

/// Latency slack at which a sibling counts as able to *absorb* diverted
/// traffic.  When no leaf in the pool clears this bar — the whole pool at
/// its collective knee — diverting is zero-sum-negative (it just pushes a
/// marginally healthier sibling over first), so the balancer falls back to
/// pure capacity weighting.
const SLACK_HEALTHY_FLOOR: f64 = 0.15;

/// Weight multiplier a fully distressed leaf (slack at or below zero)
/// retains.  The divert is deliberately partial: a front end that zeroes a
/// strained leaf's traffic would slosh the whole load between leaves every
/// step and thrash their controllers.
const SLACK_MIN_WEIGHT: f64 = 0.60;

/// Load fraction an absorbing leaf is never pushed past: the diurnal
/// latency knee the placement policies also respect.  Absorption capacity
/// is what separates this balancer from naive slack chasing — a leaf only
/// takes diverted traffic up to this line, however much slack it reports.
const ABSORB_KNEE_LOAD: f64 = 0.70;

/// Consecutive distressed observations before [`SlackAware`] starts
/// diverting a leaf's traffic.  A single window's p99 excursion is noise —
/// the leaf's own controller handles it — while an antagonist the
/// controller is still reining in depresses slack for several steps
/// running, which is the signal worth re-routing around.
const DISTRESS_STREAK_STEPS: u32 = 2;

/// Slack-aware routing: capacity weights, except that leaves observed
/// *persistently distressed* — within [`SLACK_DISTRESS_FLOOR`] of their
/// SLO for [`DISTRESS_STREAK_STEPS`] consecutive routing rounds — shed up
/// to `1 − `[`SLACK_MIN_WEIGHT`] of their share onto siblings that are
/// genuinely healthy (above [`SLACK_HEALTHY_FLOOR`]) and have *load*
/// headroom below the knee to absorb it.
///
/// The asymmetries are the point.  A healthy leaf's weight is its
/// capacity, never more — rewarding high slack with extra traffic turns
/// the balancer into an amplifier that chases the healthiest leaf over its
/// knee.  A pool at its collective knee is left capacity-weighted — when
/// the distress is load, not interference, there is no one to divert *to*,
/// and shuffling the overload between marginal leaves only manufactures
/// violations.  And one noisy window is ignored — the per-leaf Heracles
/// controller is the first responder; the balancer only steps in when the
/// controller is visibly losing.  What remains is exactly the useful case:
/// a leaf idiosyncratically hurt (an antagonist its controller is still
/// reining in) sheds traffic to siblings with real headroom while the
/// controller recovers.  The total is still conserved — slack-aware
/// balancing redistributes SLO risk, it cannot make demand disappear.
#[derive(Debug, Default)]
pub struct SlackAware {
    /// Consecutive distressed observations per server id, scoped per
    /// service.  One balancer instance routes every service in turn, so
    /// the per-round pruning below must only consider the routed service's
    /// own pool — a global map pruned against one service's leaves would
    /// wipe the other services' streaks.
    streaks: [std::collections::HashMap<ServerId, u32>; NUM_SERVICES],
}

impl LoadBalancer for SlackAware {
    fn name(&self) -> &str {
        "slack-aware"
    }

    fn route(&mut self, service: LcKind, offered_qps: f64, leaves: &[LeafView]) -> Vec<f64> {
        // Rebuild the service's streak map from this round's pool: leaves
        // that drained or retired out of the pool drop their entries, so
        // the map stays bounded by the live pool under autoscale churn and
        // a leaf that later rejoins starts a fresh streak.
        let streaks = &mut self.streaks[service.index()];
        let mut next = std::collections::HashMap::with_capacity(leaves.len());
        for l in leaves {
            if l.slack < SLACK_DISTRESS_FLOOR {
                next.insert(l.id, streaks.get(&l.id).copied().unwrap_or(0) + 1);
            }
        }
        *streaks = next;
        let streaks = &self.streaks[service.index()];
        let base = {
            let weights: Vec<f64> = leaves.iter().map(|l| l.peak_qps).collect();
            route_by_weight(offered_qps, &weights)
        };
        // What the persistently distressed leaves want to shed...
        let divert: Vec<f64> = leaves
            .iter()
            .zip(&base)
            .map(|(l, b)| {
                let streak = streaks.get(&l.id).copied().unwrap_or(0);
                if streak < DISTRESS_STREAK_STEPS {
                    0.0
                } else {
                    let shade = SLACK_MIN_WEIGHT
                        + (1.0 - SLACK_MIN_WEIGHT) * (l.slack.max(0.0) / SLACK_DISTRESS_FLOOR);
                    b * (1.0 - shade)
                }
            })
            .collect();
        let total_divert: f64 = divert.iter().sum();
        // ...and what the healthy leaves can absorb.  Absorption is priced
        // in *load* headroom below the latency knee, not in slack: latency
        // is flat until the knee and cliff-like after it, so a leaf at 85%
        // load can report comfortable slack while having nothing left to
        // take.  Marginal leaves — below healthy, above distressed —
        // neither shed nor absorb.
        let intake_cap: Vec<f64> = leaves
            .iter()
            .map(|l| {
                if l.slack >= SLACK_HEALTHY_FLOOR {
                    (ABSORB_KNEE_LOAD - l.load).max(0.0) * l.peak_qps
                } else {
                    0.0
                }
            })
            .collect();
        let capacity: f64 = intake_cap.iter().sum();
        if total_divert <= 0.0 || capacity <= 0.0 {
            return base;
        }
        let scale = (capacity / total_divert).min(1.0);
        base.iter()
            .zip(&divert)
            .zip(&intake_cap)
            .map(|((b, d), cap)| b - d * scale + cap / capacity * total_divert * scale)
            .collect()
    }
}

/// The built-in balancers, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerKind {
    /// Traffic proportional to leaf capacity (slack-blind).
    CapacityWeighted,
    /// Capacity weights shaded by observed latency slack.
    SlackAware,
}

impl BalancerKind {
    /// All built-in balancers, in reporting order.
    pub fn all() -> [BalancerKind; 2] {
        [BalancerKind::CapacityWeighted, BalancerKind::SlackAware]
    }

    /// The balancer's display name.
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::CapacityWeighted => "capacity-weighted",
            BalancerKind::SlackAware => "slack-aware",
        }
    }

    /// Builds the balancer.
    pub fn build(self) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::CapacityWeighted => Box::new(CapacityWeighted),
            BalancerKind::SlackAware => Box::new(SlackAware::default()),
        }
    }
}

impl std::str::FromStr for BalancerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "capacity-weighted" => Ok(BalancerKind::CapacityWeighted),
            "slack-aware" => Ok(BalancerKind::SlackAware),
            other => Err(format!(
                "unknown balancer {other:?} (expected capacity-weighted or slack-aware)"
            )),
        }
    }
}

/// One step's routing decision: the per-server load fractions plus the
/// offered/routed QPS ledger the conservation audit reads.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingStep {
    /// Load fraction per server id (0 for retired servers and servers of
    /// services with no offered traffic).  May exceed 1.0: a pool that has
    /// shrunk below its service's demand runs its survivors past their
    /// knee — that is the point.
    pub loads: Vec<f64>,
    /// Offered QPS per service, indexed by [`LcKind::index`].
    pub offered_qps: [f64; NUM_SERVICES],
    /// Routed QPS per service (what actually landed on leaves).
    pub routed_qps: [f64; NUM_SERVICES],
}

impl RoutingStep {
    /// The worst absolute routed-vs-offered imbalance across services,
    /// relative to the offered volume — the conservation audit number
    /// (zero up to floating point whenever every offered service has a
    /// leaf).
    pub fn max_imbalance(&self) -> f64 {
        self.offered_qps
            .iter()
            .zip(&self.routed_qps)
            .map(|(o, r)| (o - r).abs() / (1.0 + o))
            .fold(0.0, f64::max)
    }
}

/// The fleet's traffic plane: owns the service catalog's aggregate demand
/// and routes it onto the placement store's in-service leaves every step.
pub struct TrafficPlane {
    catalog: ServiceCatalog,
    balancer: Box<dyn LoadBalancer>,
    /// Aggregate peak QPS each service was provisioned with (the initial
    /// fleet's pool capacity) — the fixed denominator that turns a demand
    /// curve's fraction into offered QPS.  Demand is exogenous: retiring
    /// leaves does not shrink it, which is exactly what the old
    /// per-server-trace model got wrong.
    provisioned_peak_qps: [f64; NUM_SERVICES],
    /// Simulated seconds → diurnal wall seconds (mirrors
    /// `FleetConfig::time_compression`).
    time_compression: f64,
    /// Routing-decision events buffered for the fleet's flight recorder
    /// (`None` unless tracing was enabled — the untraced hot path pays one
    /// `Option` check per step).
    trace: Option<TraceLog>,
    /// The balancer's verdict per server id from the most recent traced
    /// route (see [`decision`](Self::decision)).  Empty when not tracing.
    decisions: Vec<&'static str>,
}

impl TrafficPlane {
    /// Creates a plane over `catalog`, provisioned at the given per-service
    /// aggregate peak QPS (normally the initial fleet's pool capacity).
    pub fn new(
        catalog: ServiceCatalog,
        balancer: Box<dyn LoadBalancer>,
        provisioned_peak_qps: [f64; NUM_SERVICES],
        time_compression: f64,
    ) -> Self {
        assert!(
            time_compression.is_finite() && time_compression > 0.0,
            "time compression must be positive, got {time_compression}"
        );
        TrafficPlane {
            catalog,
            balancer,
            provisioned_peak_qps,
            time_compression,
            trace: None,
            decisions: Vec::new(),
        }
    }

    /// Turns routing-decision tracing on or off.  Tracing is read-only
    /// observation: the routes (and their seeded determinism) are identical
    /// either way.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled.then(TraceLog::new);
        self.decisions.clear();
    }

    /// Drains the routing events buffered since the last call (empty unless
    /// tracing is enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(TraceLog::drain).unwrap_or_default()
    }

    /// The balancer's verdict for a server in the most recent traced route:
    /// `"weighted"` for a plain capacity-proportional share, `"shed"` for a
    /// leaf the balancer diverted traffic away from, `"absorbed"` for a
    /// leaf that took a diverted share, `"unrouted"` for a leaf that got no
    /// traffic (retired, or its service offered nothing).  Returns
    /// `"weighted"` when tracing is off — the violation attribution this
    /// feeds only runs under telemetry.
    pub fn decision(&self, id: ServerId) -> &'static str {
        self.decisions.get(id).copied().unwrap_or("weighted")
    }

    /// `(shed, absorbed)` leaf counts from the most recent traced route —
    /// the health plane's divert-storm signal numerators.  Both are 0 when
    /// tracing is off (verdicts are only classified under telemetry).
    pub fn divert_counts(&self) -> (u64, u64) {
        let shed = self.decisions.iter().filter(|&&d| d == "shed").count() as u64;
        let absorbed = self.decisions.iter().filter(|&&d| d == "absorbed").count() as u64;
        (shed, absorbed)
    }

    /// The service catalog the plane routes for.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The balancer's display name.
    pub fn balancer_name(&self) -> &str {
        self.balancer.name()
    }

    /// The aggregate peak QPS a service was provisioned with.
    pub fn provisioned_peak_qps(&self, service: LcKind) -> f64 {
        self.provisioned_peak_qps[service.index()]
    }

    /// A service's offered QPS at simulated time `now`: its demand curve
    /// (time-compressed) times its provisioned peak.
    pub fn offered_qps(&self, service: LcKind, now: SimTime) -> f64 {
        match self.catalog.get(service) {
            Some(s) => {
                s.demand_fraction(now.as_secs_f64() * self.time_compression)
                    * self.provisioned_peak_qps[service.index()]
            }
            None => 0.0,
        }
    }

    /// The load fraction a leaf of `service` would run at under pure
    /// capacity-weighted routing at time `now`, given the store's current
    /// in-service pool — the forecast estimate planners and autoscalers
    /// use (the live route may skew per-leaf fractions, but conserves the
    /// same total).
    pub fn expected_pool_load(&self, service: LcKind, now: SimTime, store: &PlacementStore) -> f64 {
        let pool = store.in_service_peak_qps(service);
        if pool <= 0.0 {
            return 0.0;
        }
        self.offered_qps(service, now) / pool
    }

    /// Routes every catalog service's offered QPS across the store's
    /// in-service leaves at time `now`, returning the per-server load
    /// fractions and the offered/routed conservation ledger.
    pub fn route(&mut self, now: SimTime, store: &PlacementStore) -> RoutingStep {
        self.route_held(now, now, store)
    }

    /// [`route`](Self::route) with the demand-curve sample time decoupled
    /// from the trace stamp: the event-driven core quantizes `demand_now`
    /// onto the hold grid (so routed loads repeat bitwise across a held
    /// span), but the route still *happens* every step and its trace
    /// events must carry the step's own monotone `trace_now` — stamping
    /// them with the held sample time would send the trace backwards in
    /// sim time mid-hold.
    pub fn route_held(
        &mut self,
        demand_now: SimTime,
        trace_now: SimTime,
        store: &PlacementStore,
    ) -> RoutingStep {
        let now = demand_now;
        let mut step = RoutingStep {
            loads: vec![0.0; store.servers().len()],
            offered_qps: [0.0; NUM_SERVICES],
            routed_qps: [0.0; NUM_SERVICES],
        };
        if self.trace.is_some() {
            self.decisions.clear();
            self.decisions.resize(store.servers().len(), "unrouted");
        }
        for service in self.catalog.services().iter().map(|s| s.kind()).collect::<Vec<_>>() {
            let offered = self.offered_qps(service, now);
            step.offered_qps[service.index()] = offered;
            // The store maintains the per-service leaf pool incrementally
            // (updated on add/drain/retire), in the same ascending id
            // order the old full-fleet filter produced — O(pool) per step
            // instead of O(fleet × services).
            let leaves: Vec<LeafView> = store
                .service_leaf_ids(service)
                .iter()
                .map(|&id| {
                    let s = store.server(id);
                    LeafView { id: s.id, peak_qps: s.peak_qps, slack: s.slack, load: s.lc_load }
                })
                .collect();
            if leaves.is_empty() {
                // No pool: the demand is unroutable this step.  The fleet
                // guards against retiring a service's last leaf, so this
                // only happens for services the initial fleet never hosted
                // (whose provisioned peak, and hence offered QPS, is zero).
                continue;
            }
            let routed = self.balancer.route(service, offered, &leaves);
            assert_eq!(routed.len(), leaves.len(), "balancer dropped or invented leaves");
            for (leaf, qps) in leaves.iter().zip(&routed) {
                assert!(qps.is_finite() && *qps >= 0.0, "balancer routed {qps} QPS");
                step.loads[leaf.id] = qps / leaf.peak_qps;
                step.routed_qps[service.index()] += qps;
            }
            if let Some(trace) = self.trace.as_mut() {
                // Classify each leaf's share against the pure
                // capacity-weighted split: any balancer's diverts show up
                // as deviations from it, so the verdicts work for future
                // balancers without a trait change.
                let base = {
                    let weights: Vec<f64> = leaves.iter().map(|l| l.peak_qps).collect();
                    route_by_weight(offered, &weights)
                };
                let (mut shed, mut absorbed) = (0u64, 0u64);
                for ((leaf, qps), b) in leaves.iter().zip(&routed).zip(&base) {
                    let tolerance = 1e-9 * (1.0 + b.abs());
                    let verdict = if *qps < b - tolerance {
                        shed += 1;
                        "shed"
                    } else if *qps > b + tolerance {
                        absorbed += 1;
                        "absorbed"
                    } else {
                        "weighted"
                    };
                    self.decisions[leaf.id] = verdict;
                    if verdict != "weighted" {
                        trace.emit(
                            TraceEvent::new(trace_now, "traffic", "divert")
                                .u64("server", leaf.id as u64)
                                .str("service", service.name())
                                .str("verdict", verdict)
                                .f64("base_qps", *b)
                                .f64("routed_qps", *qps)
                                .f64("slack", leaf.slack),
                        );
                    }
                }
                trace.emit(
                    TraceEvent::new(trace_now, "traffic", "route")
                        .str("service", service.name())
                        .str("balancer", self.balancer.name())
                        .f64("offered_qps", offered)
                        .f64("routed_qps", step.routed_qps[service.index()])
                        .u64("leaves", leaves.len() as u64)
                        .u64("shed", shed)
                        .u64("absorbed", absorbed),
                );
            }
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.emit(
                TraceEvent::new(trace_now, "traffic", "conservation")
                    .f64("max_imbalance", step.max_imbalance()),
            );
        }
        step
    }
}

impl std::fmt::Debug for TrafficPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficPlane")
            .field("services", &self.catalog.len())
            .field("balancer", &self.balancer.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ServerCapacity;
    use heracles_sim::SimTime;
    use heracles_workloads::{LcWorkload, ServiceMix};

    fn leaf(id: ServerId, peak_qps: f64, slack: f64) -> LeafView {
        LeafView { id, peak_qps, slack, load: 1.0 - slack }
    }

    #[test]
    fn capacity_weighted_routes_proportionally_and_conserves() {
        let leaves = [leaf(0, 1000.0, 0.5), leaf(1, 3000.0, 0.1)];
        let routed = CapacityWeighted.route(LcKind::Websearch, 2000.0, &leaves);
        assert!((routed[0] - 500.0).abs() < 1e-9);
        assert!((routed[1] - 1500.0).abs() < 1e-9);
        assert!((routed.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
        // Equal fraction of own capacity on every leaf.
        assert!((routed[0] / 1000.0 - routed[1] / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn slack_aware_diverts_from_persistently_distressed_leaves_but_conserves() {
        let mut balancer = SlackAware::default();
        let leaves = [leaf(0, 1000.0, 0.02), leaf(1, 1000.0, 0.60)];
        // The first distressed observation is treated as window noise: the
        // route is still pure capacity weighting.
        let first = balancer.route(LcKind::Websearch, 1000.0, &leaves);
        assert!((first[0] - 500.0).abs() < 1e-9, "diverted on one noisy window: {first:?}");
        // The second consecutive one is a losing controller: divert.
        let routed = balancer.route(LcKind::Websearch, 1000.0, &leaves);
        assert!(routed[1] > routed[0], "traffic did not drain off the distressed leaf: {routed:?}");
        assert!((routed.iter().sum::<f64>() - 1000.0).abs() < 1e-9);
        // The divert is partial: the strained leaf still serves a real share.
        assert!(routed[0] / 1000.0 > 0.3, "divert unbounded: {routed:?}");
        // A healthy observation clears the streak.
        let recovered = balancer.route(
            LcKind::Websearch,
            1000.0,
            &[leaf(0, 1000.0, 0.5), leaf(1, 1000.0, 0.6)],
        );
        assert!((recovered[0] - 500.0).abs() < 1e-9);

        // All leaves healthy reduces to pure capacity weighting — high
        // slack is never *rewarded* with extra traffic.
        let mut fresh = SlackAware::default();
        for _ in 0..3 {
            let even = fresh.route(
                LcKind::Websearch,
                1000.0,
                &[leaf(0, 500.0, 0.15), leaf(1, 1500.0, 0.9)],
            );
            assert!((even[0] - 250.0).abs() < 1e-9 && (even[1] - 750.0).abs() < 1e-9);
        }

        // A pool at its collective knee (no absorber with load headroom)
        // stays capacity-weighted: shuffling overload between marginal
        // leaves only manufactures violations.
        let mut kneebound = SlackAware::default();
        let knee = [leaf(0, 1000.0, 0.02), leaf(1, 1000.0, 0.05)];
        for _ in 0..3 {
            let routed = kneebound.route(LcKind::Websearch, 2000.0, &knee);
            assert!((routed[0] - 1000.0).abs() < 1e-9, "diverted with no absorber: {routed:?}");
        }
    }

    #[test]
    fn slack_aware_prunes_streaks_for_leaves_that_leave_the_pool() {
        let mut balancer = SlackAware::default();
        // Autoscale churn: the distressed pool rotates every round, so a
        // leaky streak map would accumulate one stale entry per round.
        for round in 0..20 {
            let pool = [leaf(round, 1000.0, 0.02), leaf(round + 1, 1000.0, 0.02)];
            balancer.route(LcKind::Websearch, 1000.0, &pool);
            let tracked: usize = balancer.streaks.iter().map(|m| m.len()).sum();
            assert!(
                tracked <= pool.len(),
                "streak map grew past the live pool after round {round}: {tracked} entries"
            );
        }
        // A leaf that left the pool and rejoins starts a fresh streak: its
        // first distressed round back is treated as window noise again.
        let rejoined = balancer.route(
            LcKind::Websearch,
            1000.0,
            &[leaf(0, 1000.0, 0.02), leaf(1, 1000.0, 0.9)],
        );
        assert!((rejoined[0] - 500.0).abs() < 1e-9, "stale streak survived: {rejoined:?}");
    }

    #[test]
    fn slack_aware_streaks_are_scoped_per_service() {
        let mut balancer = SlackAware::default();
        let ws = [leaf(0, 1000.0, 0.02), leaf(1, 1000.0, 0.60)];
        let mkv = [leaf(2, 1000.0, 0.9), leaf(3, 1000.0, 0.9)];
        balancer.route(LcKind::Websearch, 1000.0, &ws);
        // Routing another service's (disjoint) pool between websearch
        // rounds must not clear websearch's distress streaks.
        balancer.route(LcKind::Memkeyval, 1000.0, &mkv);
        let routed = balancer.route(LcKind::Websearch, 1000.0, &ws);
        assert!(
            routed[1] > routed[0],
            "interleaved service routing cleared the distress streak: {routed:?}"
        );
    }

    #[test]
    fn degenerate_weights_fall_back_to_an_even_split() {
        let routed = route_by_weight(900.0, &[0.0, 0.0, 0.0]);
        assert_eq!(routed, vec![300.0; 3]);
    }

    #[test]
    fn balancer_kinds_round_trip_names() {
        for kind in BalancerKind::all() {
            assert_eq!(kind.name().parse::<BalancerKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("round-robin".parse::<BalancerKind>().is_err());
    }

    #[test]
    fn plane_routes_the_catalog_and_reports_conservation() {
        let catalog = ServiceCatalog::build(ServiceMix::mixed_frontend(), 5, 1.0);
        let caps: Vec<ServerCapacity> = catalog
            .assignments(6)
            .into_iter()
            .map(|svc| {
                ServerCapacity::for_service(
                    &heracles_hw::ServerConfig::default_haswell(),
                    2,
                    1,
                    svc,
                    LcWorkload::of_kind(svc).peak_qps(),
                )
            })
            .collect();
        let store = PlacementStore::heterogeneous(&caps);
        let provisioned = {
            let mut p = [0.0; NUM_SERVICES];
            for c in &caps {
                p[c.service.index()] += c.peak_qps;
            }
            p
        };
        let mut plane =
            TrafficPlane::new(catalog, BalancerKind::CapacityWeighted.build(), provisioned, 1.0);
        let step = plane.route(SimTime::from_secs(3600), &store);
        assert!(step.max_imbalance() < 1e-9, "imbalance {}", step.max_imbalance());
        // Every in-service leaf got load; every service offered something.
        for s in store.servers() {
            assert!(step.loads[s.id] > 0.0, "leaf {} got no traffic", s.id);
        }
        for k in LcKind::all() {
            assert!(step.offered_qps[k.index()] > 0.0);
        }
        // A retired leaf's share lands on the survivors of its service.
        let mut shrunk = store.clone();
        let ws_leaves: Vec<ServerId> = shrunk
            .servers()
            .iter()
            .filter(|s| s.service == LcKind::Websearch)
            .map(|s| s.id)
            .collect();
        assert!(ws_leaves.len() >= 2, "{ws_leaves:?}");
        shrunk.begin_drain(ws_leaves[0]);
        shrunk.retire(ws_leaves[0]);
        let after = plane.route(SimTime::from_secs(3600), &shrunk);
        assert!(after.max_imbalance() < 1e-9);
        assert_eq!(after.loads[ws_leaves[0]], 0.0, "retired leaf still routed");
        for &survivor in &ws_leaves[1..] {
            assert!(
                after.loads[survivor] > step.loads[survivor] + 1e-9,
                "survivor {survivor} did not absorb the retired leaf's share"
            );
        }
        assert!(
            (after.routed_qps[0] - step.routed_qps[0]).abs() < 1e-6,
            "scale-in changed the service's routed volume"
        );
    }

    #[test]
    fn expected_pool_load_tracks_the_pool_size() {
        let catalog = ServiceCatalog::build(ServiceMix::websearch_only(), 5, 0.0);
        let caps = vec![ServerCapacity::reference(2); 4];
        let mut store = PlacementStore::heterogeneous(&caps);
        let provisioned = [4.0 * LcWorkload::websearch().peak_qps(), 0.0, 0.0];
        let plane =
            TrafficPlane::new(catalog, BalancerKind::CapacityWeighted.build(), provisioned, 1.0);
        let t = SimTime::from_secs(6 * 3600);
        let full = plane.expected_pool_load(LcKind::Websearch, t, &store);
        store.begin_drain(0);
        store.retire(0);
        let shrunk = plane.expected_pool_load(LcKind::Websearch, t, &store);
        assert!((shrunk - full * 4.0 / 3.0).abs() < 1e-9, "{full} -> {shrunk}");
        // Absent services have no load.
        assert_eq!(plane.expected_pool_load(LcKind::Memkeyval, t, &store), 0.0);
    }
}
