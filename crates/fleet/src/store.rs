//! The placement store: the scheduler's view of every server's live state.
//!
//! Mirrors the placement-store shape of cluster managers (a central table of
//! per-host capacity and health that schedulers consult and commit into),
//! specialised to what matters under Heracles: besides BE slot occupancy,
//! each entry carries the server's current LC load from the diurnal trace
//! and the latency slack / admission verdict observed from its per-server
//! controller over the most recent step.  Placement policies read this table;
//! the fleet simulator is the only writer.

use heracles_sim::SimTime;
use heracles_workloads::BeKind;
use serde::{Deserialize, Serialize};

use crate::job::JobId;

/// Identifier of a server within the fleet (dense, starting at 0).
pub type ServerId = usize;

/// Latency slack below which a server is considered too close to its SLO to
/// accept new BE work (the same 5% floor at which the paper's Algorithm 1
/// starts reclaiming BE cores).
pub const ADMISSION_SLACK_FLOOR: f64 = 0.05;

/// LC load at or above which placement is futile: the paper's controller
/// only (re-)enables BE execution below 80% load, so a job placed on a
/// hotter server sits disabled until it is preempted.
pub const ADMISSION_LOAD_CEILING: f64 = 0.80;

/// What the store knows about one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerEntry {
    /// The server's identifier.
    pub id: ServerId,
    /// How many BE jobs the server may host at once.
    pub be_slots: usize,
    /// Jobs currently resident (placed and not yet completed or preempted).
    pub resident: Vec<JobId>,
    /// The BE workload kind currently attached to the server's runner (its
    /// head resident job's kind), if any.  Placing a job of the same kind
    /// lets it share — and later seamlessly inherit — the already-grown BE
    /// allocation instead of restarting the controller's conservative ramp.
    pub attached_kind: Option<BeKind>,
    /// LC load offered during the current step (fraction of peak).
    pub lc_load: f64,
    /// Per-step change of the LC load (this step minus the previous one):
    /// the diurnal trajectory signal a monitoring pipeline would expose.
    /// Positive on servers climbing towards their peak.
    pub load_trend: f64,
    /// Whether `lc_load` has been set at least once (trend is meaningless
    /// before that).
    seen_load: bool,
    /// Whether the server's Heracles controller currently allows BE
    /// execution.
    pub be_admitted: bool,
    /// Latency slack observed over the most recent step: `1 -` the worst
    /// window's SLO-normalized latency.  Positive means healthy; starts
    /// optimistic at 1.0 before any window has run.
    pub slack: f64,
    /// Effective Machine Utilization of the most recent window.
    pub recent_emu: f64,
    /// Normalized BE throughput of the most recent window.
    pub recent_be_throughput: f64,
    /// Consecutive steps the server sat occupied with BE execution disabled
    /// (the preemption trigger).
    pub disabled_streak: usize,
}

impl ServerEntry {
    /// Number of unoccupied BE slots.
    pub fn free_slots(&self) -> usize {
        self.be_slots.saturating_sub(self.resident.len())
    }

    /// True if at least one BE slot is unoccupied.
    pub fn has_free_slot(&self) -> bool {
        self.free_slots() > 0
    }

    /// True if the server is healthy enough to accept new BE work: a free
    /// slot, enough latency slack that the controller would let the job run
    /// rather than immediately squeeze it back out, and load below the
    /// controller's BE re-enable threshold.
    pub fn admits_be(&self) -> bool {
        self.has_free_slot()
            && self.slack > ADMISSION_SLACK_FLOOR
            && self.lc_load < ADMISSION_LOAD_CEILING
    }

    /// The LC load projected `horizon` steps ahead by linear extrapolation
    /// of the current trend, clamped to `[0, 1]`.
    pub fn projected_load(&self, horizon: f64) -> f64 {
        (self.lc_load + self.load_trend * horizon).clamp(0.0, 1.0)
    }
}

/// The fleet-wide placement table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStore {
    servers: Vec<ServerEntry>,
    last_updated: SimTime,
}

impl PlacementStore {
    /// Creates a store for `servers` hosts with `be_slots` job slots each.
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `be_slots` is zero.
    pub fn new(servers: usize, be_slots: usize) -> Self {
        assert!(servers > 0, "a fleet needs at least one server");
        assert!(be_slots > 0, "servers need at least one BE slot");
        PlacementStore {
            servers: (0..servers)
                .map(|id| ServerEntry {
                    id,
                    be_slots,
                    resident: Vec::new(),
                    attached_kind: None,
                    lc_load: 0.0,
                    load_trend: 0.0,
                    seen_load: false,
                    be_admitted: true,
                    slack: 1.0,
                    recent_emu: 0.0,
                    recent_be_throughput: 0.0,
                    disabled_streak: 0,
                })
                .collect(),
            last_updated: SimTime::ZERO,
        }
    }

    /// All per-server entries, indexed by server id.
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// One server's entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server(&self, id: ServerId) -> &ServerEntry {
        &self.servers[id]
    }

    /// When the store last absorbed step observations.
    pub fn last_updated(&self) -> SimTime {
        self.last_updated
    }

    /// Total BE jobs currently resident across the fleet.
    pub fn running_jobs(&self) -> usize {
        self.servers.iter().map(|s| s.resident.len()).sum()
    }

    /// Commits a placement.
    ///
    /// # Panics
    ///
    /// Panics if the server has no free slot or already hosts the job — a
    /// placement policy returning such a server is a scheduler bug, and the
    /// property tests lean on this assert.
    pub fn place(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        assert!(
            entry.resident.len() < entry.be_slots,
            "placement exceeds server {server}'s {} BE slots",
            entry.be_slots
        );
        assert!(!entry.resident.contains(&job), "job {job} already resident on server {server}");
        entry.resident.push(job);
    }

    /// Releases a job's slot (completion or preemption).
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on the server.
    pub fn release(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        let idx = entry
            .resident
            .iter()
            .position(|&j| j == job)
            .unwrap_or_else(|| panic!("job {job} is not resident on server {server}"));
        entry.resident.remove(idx);
        if entry.resident.is_empty() {
            // The streak tracks one occupancy episode; once the last job
            // leaves, a future placement starts its grace period afresh.
            entry.disabled_streak = 0;
        }
    }

    /// Records which BE workload kind the server's runner currently has
    /// attached (kept in sync by the fleet simulator after attachment
    /// changes).
    pub fn set_attached_kind(&mut self, id: ServerId, kind: Option<BeKind>) {
        self.servers[id].attached_kind = kind;
    }

    /// Sets a server's LC load for the upcoming step (read by the policies
    /// during dispatch, before the step runs) and updates its load trend.
    pub fn set_load(&mut self, id: ServerId, lc_load: f64) {
        let entry = &mut self.servers[id];
        let load = lc_load.clamp(0.0, 1.0);
        entry.load_trend = if entry.seen_load { load - entry.lc_load } else { 0.0 };
        entry.seen_load = true;
        entry.lc_load = load;
    }

    /// Absorbs one server's observations after a step: the controller's
    /// admission verdict and the step's latency slack / utilization, plus the
    /// disabled-streak bookkeeping that drives preemption.
    pub fn observe(
        &mut self,
        id: ServerId,
        now: SimTime,
        slack: f64,
        recent_emu: f64,
        recent_be_throughput: f64,
        be_admitted: bool,
    ) {
        let entry = &mut self.servers[id];
        entry.slack = slack;
        entry.recent_emu = recent_emu;
        entry.recent_be_throughput = recent_be_throughput;
        entry.be_admitted = be_admitted;
        if !entry.resident.is_empty() && !be_admitted {
            entry.disabled_streak += 1;
        } else {
            entry.disabled_streak = 0;
        }
        self.last_updated = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_occupies_and_release_frees_slots() {
        let mut store = PlacementStore::new(2, 2);
        assert_eq!(store.server(0).free_slots(), 2);
        store.place(10, 0);
        store.place(11, 0);
        assert!(!store.server(0).has_free_slot());
        assert!(store.server(1).has_free_slot());
        assert_eq!(store.running_jobs(), 2);
        store.release(10, 0);
        assert_eq!(store.server(0).free_slots(), 1);
        assert_eq!(store.server(0).resident, vec![11]);
    }

    #[test]
    #[should_panic(expected = "exceeds server")]
    fn overfilling_a_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.place(0, 0);
        store.place(1, 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn releasing_a_stranger_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.release(3, 0);
    }

    #[test]
    fn admission_requires_slack_and_a_slot() {
        let mut store = PlacementStore::new(1, 1);
        assert!(store.server(0).admits_be());
        store.observe(0, SimTime::from_secs(1), 0.01, 0.5, 0.0, true);
        assert!(!store.server(0).admits_be(), "no slack");
        store.observe(0, SimTime::from_secs(2), 0.4, 0.5, 0.0, true);
        assert!(store.server(0).admits_be());
        store.place(0, 0);
        assert!(!store.server(0).admits_be(), "no slot");
    }

    #[test]
    fn disabled_streak_counts_only_occupied_disabled_steps() {
        let mut store = PlacementStore::new(1, 1);
        // Unoccupied: a disabled controller is not a stuck job.
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 0);
        store.place(7, 0);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(3), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // Re-enablement resets the streak.
        store.observe(0, SimTime::from_secs(4), 0.5, 0.3, 0.1, true);
        assert_eq!(store.server(0).disabled_streak, 0);
        assert_eq!(store.last_updated(), SimTime::from_secs(4));
    }

    #[test]
    fn emptying_a_server_resets_its_disabled_streak() {
        let mut store = PlacementStore::new(1, 2);
        store.place(7, 0);
        store.place(8, 0);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // One job leaving does not end the occupancy episode...
        store.release(7, 0);
        assert_eq!(store.server(0).disabled_streak, 2);
        // ...but the last one does: the next placement gets fresh grace.
        store.release(8, 0);
        assert_eq!(store.server(0).disabled_streak, 0);
    }
}
