//! The placement store: the scheduler's view of every server's live state.
//!
//! Mirrors the placement-store shape of cluster managers (a central table of
//! per-host capacity and health that schedulers consult and commit into),
//! specialised to what matters under Heracles: besides BE slot occupancy,
//! each entry carries the server's current LC load from the diurnal trace
//! and the latency slack / admission verdict observed from its per-server
//! controller over the most recent step.  Placement policies read this table;
//! the fleet simulator is the only writer.

use heracles_hw::ServerConfig;
use heracles_sim::SimTime;
use heracles_workloads::{BeKind, LcKind, LcWorkload, NUM_SERVICES};
use serde::{Deserialize, Serialize};

use crate::job::JobId;

/// Identifier of a server within the fleet (dense, starting at 0).
pub type ServerId = usize;

/// Core count of the reference (Haswell) generation: the yardstick against
/// which per-server capacity is normalized — BE slot counts and the
/// policies' occupancy penalties both scale with `cores / REFERENCE_CORES`.
pub const REFERENCE_CORES: usize = 36;

/// Peak DRAM bandwidth of the reference (Haswell) generation, in GB/s.
pub const REFERENCE_DRAM_GBPS: f64 = 120.0;

/// Latency slack at or below which a server is considered too close to its
/// SLO to accept new BE work.
///
/// Heracles deliberately runs servers *hot*: a websearch leaf at ~80% load
/// under its controller settles a few percent under its SLO (Figure 4), and
/// that is healthy steady state, not distress — a positive-slack floor
/// would permanently exclude every server at its controller-managed
/// equilibrium.  So admission only screens out servers currently *at or
/// over* their SLO; the load ceiling below guards the latency knee, and the
/// controller's own admission verdict covers everything in between.
pub const ADMISSION_SLACK_FLOOR: f64 = 0.0;

/// LC load at or above which the paper's controller will not *re-enable*
/// BE execution: a job placed on a hotter server whose controller is not
/// already running BE sits disabled until it is preempted.
pub const ADMISSION_LOAD_CEILING: f64 = 0.80;

/// LC load at or above which the paper's controller *disables* BE outright.
/// Between the two thresholds the controller is hysteretic: a server that
/// enabled BE during a load dip keeps running it until load crosses this
/// line, so a server observed with BE enabled stays placeable up to here —
/// Heracles colocates right up to its knee, and refusing the 0.80–0.85 band
/// wholesale would waste exactly the servers the paper runs hottest.
pub const ADMISSION_LOAD_DISABLE: f64 = 0.85;

/// The static capacity of one server, as the scheduler sees it.
///
/// In a heterogeneous fleet every entry carries its own capacity, and in a
/// mixed-service fleet every entry is a (generation × service) cell: the
/// scheduler never assumes the fleet is uniform in either dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCapacity {
    /// Physical core count.
    pub cores: usize,
    /// Peak streaming DRAM bandwidth across all sockets, in GB/s.
    pub dram_peak_gbps: f64,
    /// How many BE jobs the server may host at once.
    pub be_slots: usize,
    /// Index of the server's hardware generation (see
    /// [`Generation`](crate::Generation)).
    pub generation: usize,
    /// The LC service this leaf serves.
    pub service: LcKind,
    /// Peak QPS of this leaf for its service (the service's reference peak
    /// scaled to the leaf's compute capacity) — the weight the traffic
    /// plane's balancers route by.
    pub peak_qps: f64,
}

impl ServerCapacity {
    /// Derives a websearch-leaf capacity record from a hardware
    /// configuration (the single-service shim over
    /// [`for_service`](Self::for_service)).
    ///
    /// `be_slots_per_reference` is the BE slot count a reference
    /// ([`REFERENCE_CORES`]-core Haswell) server gets; other generations
    /// scale it with their core count, rounded, with a floor of one slot —
    /// a 48-core box hosts proportionally more jobs than a 16-core one.
    pub fn from_config(
        config: &ServerConfig,
        be_slots_per_reference: usize,
        generation: usize,
    ) -> Self {
        let ratio = config.total_cores() as f64 / REFERENCE_CORES as f64;
        Self::for_service(
            config,
            be_slots_per_reference,
            generation,
            LcKind::Websearch,
            LcWorkload::websearch().peak_qps() * ratio,
        )
    }

    /// Derives a capacity record for a leaf of `service` on the given
    /// hardware: BE slots scale with the core count relative to the
    /// reference generation, while `peak_qps` is supplied by the caller —
    /// it must be the peak of the *workload profile the leaf actually
    /// runs* (the fleet scales profiles against its own baseline, which is
    /// not always the reference generation), and it is the weight the
    /// traffic plane routes by.
    pub fn for_service(
        config: &ServerConfig,
        be_slots_per_reference: usize,
        generation: usize,
        service: LcKind,
        peak_qps: f64,
    ) -> Self {
        assert!(peak_qps.is_finite() && peak_qps > 0.0, "leaf peak QPS must be positive");
        let cores = config.total_cores();
        let scaled = (be_slots_per_reference * cores + REFERENCE_CORES / 2) / REFERENCE_CORES;
        ServerCapacity {
            cores,
            dram_peak_gbps: config.dram_peak_gbps(),
            be_slots: scaled.max(1),
            generation,
            service,
            peak_qps,
        }
    }

    /// A reference-generation websearch capacity (used by the homogeneous
    /// constructors and tests).
    pub fn reference(be_slots: usize) -> Self {
        ServerCapacity {
            cores: REFERENCE_CORES,
            dram_peak_gbps: REFERENCE_DRAM_GBPS,
            be_slots,
            generation: 1,
            service: LcKind::Websearch,
            peak_qps: LcWorkload::websearch().peak_qps(),
        }
    }
}

/// Lifecycle state of a server in an elastic fleet.
///
/// A static fleet keeps every server [`Active`](ServerState::Active) for the
/// whole run.  Under an autoscaler, scale-in first marks a server
/// [`Draining`](ServerState::Draining) — it stops admitting new BE work but
/// keeps serving its LC traffic and its resident jobs until they are
/// live-migrated away — and only an *empty* draining server may be
/// [`Retired`](ServerState::Retired) (decommissioned: it stops stepping,
/// stops costing TCO, and never hosts work again).  Retired entries stay in
/// the table so server ids remain dense and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerState {
    /// In service: steps, serves LC traffic and may admit BE jobs.
    Active,
    /// Scheduled for removal: still steps and serves LC traffic, but admits
    /// no new BE work while its residents are migrated away.
    Draining,
    /// Decommissioned: no longer steps, costs nothing, hosts nothing.
    Retired,
}

/// What the store knows about one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerEntry {
    /// The server's identifier.
    pub id: ServerId,
    /// Where the server is in its lifecycle (always
    /// [`ServerState::Active`] in a static fleet).
    pub state: ServerState,
    /// Physical core count (per-server capacity; heterogeneous fleets mix
    /// generations with different counts).
    pub cores: usize,
    /// Peak DRAM bandwidth, in GB/s.
    pub dram_peak_gbps: f64,
    /// Index of the server's hardware generation.
    pub generation: usize,
    /// The LC service this leaf serves (entries are (generation × service)
    /// cells in a mixed fleet).
    pub service: LcKind,
    /// Peak QPS of this leaf for its service — the weight the traffic
    /// plane's balancers route by.
    pub peak_qps: f64,
    /// How many BE jobs the server may host at once.
    pub be_slots: usize,
    /// Jobs currently resident (placed and not yet completed or preempted).
    pub resident: Vec<JobId>,
    /// The BE workload kind currently attached to the server's runner (its
    /// head resident job's kind), if any.  Placing a job of the same kind
    /// lets it share — and later seamlessly inherit — the already-grown BE
    /// allocation instead of restarting the controller's conservative ramp.
    pub attached_kind: Option<BeKind>,
    /// LC load offered during the current step (fraction of peak).
    pub lc_load: f64,
    /// Per-step change of the LC load (this step minus the previous one):
    /// the diurnal trajectory signal a monitoring pipeline would expose.
    /// Positive on servers climbing towards their peak.
    pub load_trend: f64,
    /// Whether `lc_load` has been set at least once (trend is meaningless
    /// before that).
    seen_load: bool,
    /// Whether the server's controller has reported at least one step of
    /// observations (before that, `slack` is an estimate, not a
    /// measurement).
    seen_observation: bool,
    /// Whether the server's Heracles controller currently allows BE
    /// execution.
    pub be_admitted: bool,
    /// Latency slack observed over the most recent step: `1 -` the worst
    /// window's SLO-normalized latency.  Positive means healthy.  Until the
    /// first observation arrives this is estimated from the sampled LC load
    /// (`1 - load`), not assumed perfect — blanket cold-start optimism used
    /// to pile step-0 jobs onto servers already near their latency knee.
    pub slack: f64,
    /// Effective Machine Utilization of the most recent window.
    pub recent_emu: f64,
    /// Normalized BE throughput of the most recent window.
    pub recent_be_throughput: f64,
    /// Consecutive steps the server sat occupied with BE execution disabled
    /// (the preemption trigger).
    pub disabled_streak: usize,
}

impl ServerEntry {
    /// True while the server is in service (active or draining): it steps,
    /// serves LC traffic and costs TCO.
    pub fn in_service(&self) -> bool {
        self.state != ServerState::Retired
    }

    /// True if the server may accept new BE work as far as its lifecycle is
    /// concerned (draining and retired servers never do).
    pub fn is_active(&self) -> bool {
        self.state == ServerState::Active
    }

    /// Number of unoccupied BE slots.
    pub fn free_slots(&self) -> usize {
        self.be_slots.saturating_sub(self.resident.len())
    }

    /// True if at least one BE slot is unoccupied.
    pub fn has_free_slot(&self) -> bool {
        self.free_slots() > 0
    }

    /// True if the server is healthy enough to accept new BE work: in
    /// service and not draining, a free
    /// slot, a controller that currently allows BE execution, positive
    /// latency slack (the server is not at or over its SLO), and load
    /// within the controller's hysteresis envelope — below the re-enable
    /// threshold for a server whose controller has not been observed
    /// running BE, below the disable threshold for one that has.
    ///
    /// The `be_admitted` check matters even when load and slack look fine:
    /// a controller that has disabled BE holds new jobs at zero progress
    /// until they burn their preemption grace, so placing onto such a server
    /// is strictly worse than leaving the job queued one more step.
    pub fn admits_be(&self) -> bool {
        let ceiling = if self.seen_observation && self.be_admitted {
            ADMISSION_LOAD_DISABLE
        } else {
            ADMISSION_LOAD_CEILING
        };
        self.is_active()
            && self.has_free_slot()
            && self.be_admitted
            && self.slack > ADMISSION_SLACK_FLOOR
            && self.lc_load < ceiling
    }

    /// The LC load projected `horizon` steps ahead by linear extrapolation
    /// of the current trend, clamped to `[0, 1]`.
    pub fn projected_load(&self, horizon: f64) -> f64 {
        (self.lc_load + self.load_trend * horizon).clamp(0.0, 1.0)
    }
}

/// The fleet-wide placement table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStore {
    servers: Vec<ServerEntry>,
    last_updated: SimTime,
}

impl PlacementStore {
    /// Creates a store for `servers` reference-generation hosts with
    /// `be_slots` job slots each (the homogeneous fleet).
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `be_slots` is zero.
    pub fn new(servers: usize, be_slots: usize) -> Self {
        assert!(be_slots > 0, "servers need at least one BE slot");
        Self::heterogeneous(&vec![ServerCapacity::reference(be_slots); servers])
    }

    /// Creates a store with one entry per capacity record (the
    /// heterogeneous fleet).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any entry has zero cores or BE
    /// slots.
    pub fn heterogeneous(capacities: &[ServerCapacity]) -> Self {
        assert!(!capacities.is_empty(), "a fleet needs at least one server");
        PlacementStore {
            servers: capacities
                .iter()
                .enumerate()
                .map(|(id, cap)| Self::entry_for(id, cap))
                .collect(),
            last_updated: SimTime::ZERO,
        }
    }

    fn entry_for(id: ServerId, cap: &ServerCapacity) -> ServerEntry {
        assert!(cap.cores > 0, "server {id} needs at least one core");
        assert!(cap.be_slots > 0, "server {id} needs at least one BE slot");
        ServerEntry {
            id,
            state: ServerState::Active,
            cores: cap.cores,
            dram_peak_gbps: cap.dram_peak_gbps,
            generation: cap.generation,
            service: cap.service,
            peak_qps: cap.peak_qps,
            be_slots: cap.be_slots,
            resident: Vec::new(),
            attached_kind: None,
            lc_load: 0.0,
            load_trend: 0.0,
            seen_load: false,
            seen_observation: false,
            be_admitted: true,
            slack: 1.0,
            recent_emu: 0.0,
            recent_be_throughput: 0.0,
            disabled_streak: 0,
        }
    }

    /// Commissions a new server (autoscaler scale-out), returning its id.
    /// The new entry starts [`ServerState::Active`] with no load history —
    /// the cold-start slack estimate applies until its controller reports.
    ///
    /// # Panics
    ///
    /// Panics if the capacity has zero cores or BE slots.
    pub fn add_server(&mut self, cap: ServerCapacity) -> ServerId {
        let id = self.servers.len();
        self.servers.push(Self::entry_for(id, &cap));
        id
    }

    /// Marks a server as draining (autoscaler scale-in, phase one): it stops
    /// admitting new BE work while its residents are migrated away.  A
    /// no-op on a server already draining.
    ///
    /// # Panics
    ///
    /// Panics if the server is retired — a decommissioned box cannot drain.
    pub fn begin_drain(&mut self, id: ServerId) {
        let entry = &mut self.servers[id];
        assert!(entry.state != ServerState::Retired, "server {id} is already retired");
        entry.state = ServerState::Draining;
    }

    /// Returns a draining server to active service (a cancelled scale-in).
    ///
    /// # Panics
    ///
    /// Panics if the server is retired.
    pub fn reactivate(&mut self, id: ServerId) {
        let entry = &mut self.servers[id];
        assert!(entry.state != ServerState::Retired, "server {id} is already retired");
        entry.state = ServerState::Active;
    }

    /// Retires a drained server (autoscaler scale-in, phase two).  This is
    /// the invariant the autoscaler's property tests pin: a server may only
    /// leave the fleet once every resident job has been migrated away.
    ///
    /// # Panics
    ///
    /// Panics if the server still hosts resident jobs.
    pub fn retire(&mut self, id: ServerId) {
        let entry = &mut self.servers[id];
        assert!(
            entry.resident.is_empty(),
            "server {id} retired with {} unmigrated resident jobs",
            entry.resident.len()
        );
        entry.state = ServerState::Retired;
        entry.be_admitted = false;
        entry.disabled_streak = 0;
    }

    /// Live-migrates a job between servers: releases its slot on `from` and
    /// occupies one on `to` in a single committed move (the job never passes
    /// through the queue).
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on `from`, `to` has no free slot,
    /// or `from == to`.
    pub fn migrate(&mut self, job: JobId, from: ServerId, to: ServerId) {
        assert_ne!(from, to, "job {job} migrated onto its own server {from}");
        self.release(job, from);
        self.place(job, to);
    }

    /// Number of servers currently active (in service and not draining).
    pub fn active_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.is_active()).count()
    }

    /// Number of servers currently draining.
    pub fn draining_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.state == ServerState::Draining).count()
    }

    /// Total core count across in-service (active or draining) servers.
    pub fn in_service_cores(&self) -> usize {
        self.servers.iter().filter(|s| s.in_service()).map(|s| s.cores).sum()
    }

    /// How many in-service servers run each generation, indexed by
    /// generation index (older, Haswell, newer).
    pub fn in_service_by_generation(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for s in self.servers.iter().filter(|s| s.in_service()) {
            if let Some(slot) = counts.get_mut(s.generation) {
                *slot += 1;
            }
        }
        counts
    }

    /// How many in-service leaves serve each LC service, indexed by
    /// [`LcKind::index`] (websearch, ml_cluster, memkeyval).
    pub fn in_service_by_service(&self) -> [usize; NUM_SERVICES] {
        let mut counts = [0usize; NUM_SERVICES];
        for s in self.servers.iter().filter(|s| s.in_service()) {
            counts[s.service.index()] += 1;
        }
        counts
    }

    /// Number of in-service leaves serving one service — the pool the
    /// traffic plane routes that service's demand across.  A fleet must
    /// never retire the last leaf of a service it still serves: the
    /// service's traffic would have nowhere to go.
    pub fn in_service_leaves(&self, service: LcKind) -> usize {
        self.servers.iter().filter(|s| s.in_service() && s.service == service).count()
    }

    /// Total in-service peak QPS of one service's leaf pool (the
    /// denominator that turns the service's offered QPS into a per-leaf
    /// load fraction under capacity-weighted routing).
    pub fn in_service_peak_qps(&self, service: LcKind) -> f64 {
        self.servers
            .iter()
            .filter(|s| s.in_service() && s.service == service)
            .map(|s| s.peak_qps)
            .sum()
    }

    /// All per-server entries, indexed by server id.
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// One server's entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server(&self, id: ServerId) -> &ServerEntry {
        &self.servers[id]
    }

    /// When the store last absorbed step observations.
    pub fn last_updated(&self) -> SimTime {
        self.last_updated
    }

    /// Total BE jobs currently resident across the fleet.
    pub fn running_jobs(&self) -> usize {
        self.servers.iter().map(|s| s.resident.len()).sum()
    }

    /// Commits a placement.
    ///
    /// # Panics
    ///
    /// Panics if the server has no free slot or already hosts the job — a
    /// placement policy returning such a server is a scheduler bug, and the
    /// property tests lean on this assert.
    pub fn place(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        assert!(
            entry.resident.len() < entry.be_slots,
            "placement exceeds server {server}'s {} BE slots",
            entry.be_slots
        );
        assert!(!entry.resident.contains(&job), "job {job} already resident on server {server}");
        entry.resident.push(job);
    }

    /// Releases a job's slot (completion or preemption).
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on the server.
    pub fn release(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        let idx = entry
            .resident
            .iter()
            .position(|&j| j == job)
            .unwrap_or_else(|| panic!("job {job} is not resident on server {server}"));
        entry.resident.remove(idx);
        if entry.resident.is_empty() {
            // The streak tracks one occupancy episode; once the last job
            // leaves, a future placement starts its grace period afresh.
            entry.disabled_streak = 0;
        }
    }

    /// Records which BE workload kind the server's runner currently has
    /// attached (kept in sync by the fleet simulator after attachment
    /// changes).
    pub fn set_attached_kind(&mut self, id: ServerId, kind: Option<BeKind>) {
        self.servers[id].attached_kind = kind;
    }

    /// Sets a server's LC load for the upcoming step (read by the policies
    /// during dispatch, before the step runs) and updates its load trend.
    ///
    /// Until the server's controller has reported an observation, the
    /// latency slack is re-estimated from the sampled load (`1 - load`):
    /// cold-start dispatch must not treat a never-observed server near its
    /// diurnal peak as perfectly healthy.
    pub fn set_load(&mut self, id: ServerId, lc_load: f64) {
        let entry = &mut self.servers[id];
        let load = lc_load.clamp(0.0, 1.0);
        entry.load_trend = if entry.seen_load { load - entry.lc_load } else { 0.0 };
        entry.seen_load = true;
        entry.lc_load = load;
        if !entry.seen_observation {
            entry.slack = 1.0 - load;
        }
    }

    /// Absorbs one server's observations after a step: the controller's
    /// admission verdict and the step's latency slack / utilization, plus the
    /// disabled-streak bookkeeping that drives preemption.
    pub fn observe(
        &mut self,
        id: ServerId,
        now: SimTime,
        slack: f64,
        recent_emu: f64,
        recent_be_throughput: f64,
        be_admitted: bool,
    ) {
        let entry = &mut self.servers[id];
        entry.seen_observation = true;
        entry.slack = slack;
        entry.recent_emu = recent_emu;
        entry.recent_be_throughput = recent_be_throughput;
        entry.be_admitted = be_admitted;
        if !entry.resident.is_empty() && !be_admitted {
            entry.disabled_streak += 1;
        } else {
            entry.disabled_streak = 0;
        }
        self.last_updated = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_occupies_and_release_frees_slots() {
        let mut store = PlacementStore::new(2, 2);
        assert_eq!(store.server(0).free_slots(), 2);
        store.place(10, 0);
        store.place(11, 0);
        assert!(!store.server(0).has_free_slot());
        assert!(store.server(1).has_free_slot());
        assert_eq!(store.running_jobs(), 2);
        store.release(10, 0);
        assert_eq!(store.server(0).free_slots(), 1);
        assert_eq!(store.server(0).resident, vec![11]);
    }

    #[test]
    #[should_panic(expected = "exceeds server")]
    fn overfilling_a_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.place(0, 0);
        store.place(1, 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn releasing_a_stranger_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.release(3, 0);
    }

    #[test]
    fn admission_requires_slack_and_a_slot() {
        let mut store = PlacementStore::new(1, 1);
        assert!(store.server(0).admits_be());
        // At or over the SLO (slack <= 0): no admission.
        store.observe(0, SimTime::from_secs(1), -0.2, 0.5, 0.0, true);
        assert!(!store.server(0).admits_be(), "no slack");
        // Tiny positive slack is Heracles' normal hot steady state.
        store.observe(0, SimTime::from_secs(2), 0.01, 0.5, 0.0, true);
        assert!(store.server(0).admits_be());
        store.place(0, 0);
        assert!(!store.server(0).admits_be(), "no slot");
    }

    #[test]
    fn admission_follows_the_controller_hysteresis() {
        let mut store = PlacementStore::new(1, 1);
        // Cold start in the hysteresis band: the controller would not
        // (re-)enable BE at 0.82 load, so placement is futile.
        store.set_load(0, 0.82);
        assert!(!store.server(0).admits_be(), "cold start in the band");
        // Observed with BE enabled at the same load: the controller keeps
        // running BE until 0.85, so the server stays placeable.
        store.observe(0, SimTime::from_secs(1), 0.1, 0.82, 0.2, true);
        assert!(store.server(0).admits_be(), "enabled within the band");
        // Past the disable threshold nothing admits.
        store.set_load(0, 0.86);
        assert!(!store.server(0).admits_be(), "past disable threshold");
        // And a disabled controller in the band falls back to the
        // re-enable ceiling.
        store.set_load(0, 0.82);
        store.observe(0, SimTime::from_secs(2), 0.1, 0.82, 0.0, false);
        assert!(!store.server(0).admits_be(), "disabled in the band");
    }

    #[test]
    fn admission_respects_the_controller_verdict() {
        let mut store = PlacementStore::new(1, 1);
        // Healthy load and slack, but the controller has BE disabled: a job
        // placed here would sit at zero progress until preempted.
        store.set_load(0, 0.3);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        assert!(!store.server(0).admits_be(), "BE disabled");
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.1, true);
        assert!(store.server(0).admits_be());
    }

    #[test]
    fn cold_start_slack_comes_from_the_first_sampled_load() {
        let mut store = PlacementStore::new(2, 1);
        // Never-observed servers estimate slack from load instead of
        // assuming perfect health.
        store.set_load(0, 0.97);
        assert!((store.server(0).slack - 0.03).abs() < 1e-12);
        assert!(!store.server(0).admits_be(), "near-peak cold start");
        store.set_load(1, 0.2);
        assert!((store.server(1).slack - 0.8).abs() < 1e-12);
        assert!(store.server(1).admits_be());
        // Once a real observation lands, set_load stops touching slack.
        store.observe(0, SimTime::from_secs(1), 0.6, 0.5, 0.0, true);
        store.set_load(0, 0.97);
        assert!((store.server(0).slack - 0.6).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_capacities_derive_slots_from_cores() {
        let older = ServerCapacity::from_config(&ServerConfig::older_sandy_bridge(), 2, 0);
        let haswell = ServerCapacity::from_config(&ServerConfig::default_haswell(), 2, 1);
        let newer = ServerCapacity::from_config(&ServerConfig::newer_skylake(), 2, 2);
        assert_eq!((older.cores, older.be_slots), (16, 1));
        assert_eq!((haswell.cores, haswell.be_slots), (36, 2));
        assert_eq!((newer.cores, newer.be_slots), (48, 3));
        // Even a tiny box keeps one slot.
        let tiny = ServerCapacity::from_config(&ServerConfig::small_test(), 1, 0);
        assert_eq!(tiny.be_slots, 1);

        let store = PlacementStore::heterogeneous(&[older, haswell, newer]);
        assert_eq!(store.server(0).be_slots, 1);
        assert_eq!(store.server(2).be_slots, 3);
        assert_eq!(store.server(2).generation, 2);
        assert!(store.server(0).dram_peak_gbps < store.server(2).dram_peak_gbps);
    }

    #[test]
    fn disabled_streak_counts_only_occupied_disabled_steps() {
        let mut store = PlacementStore::new(1, 1);
        // Unoccupied: a disabled controller is not a stuck job.
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 0);
        store.place(7, 0);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(3), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // Re-enablement resets the streak.
        store.observe(0, SimTime::from_secs(4), 0.5, 0.3, 0.1, true);
        assert_eq!(store.server(0).disabled_streak, 0);
        assert_eq!(store.last_updated(), SimTime::from_secs(4));
    }

    #[test]
    fn lifecycle_gates_admission_and_retirement() {
        let mut store = PlacementStore::new(2, 2);
        store.set_load(0, 0.3);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.4, 0.1, true);
        assert!(store.server(0).admits_be());
        assert_eq!(store.active_servers(), 2);

        // Draining stops admission but the server stays in service.
        store.begin_drain(0);
        assert!(!store.server(0).admits_be(), "draining server admitted work");
        assert!(store.server(0).in_service());
        assert_eq!(store.active_servers(), 1);
        assert_eq!(store.draining_servers(), 1);
        assert_eq!(store.in_service_cores(), 72);

        // A cancelled scale-in returns the server to service.
        store.reactivate(0);
        assert!(store.server(0).admits_be());

        // An empty draining server retires; a retired one drops out of the
        // in-service aggregates entirely.
        store.begin_drain(0);
        store.retire(0);
        assert!(!store.server(0).in_service());
        assert_eq!(store.in_service_cores(), 36);
        assert_eq!(store.in_service_by_generation(), [0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "unmigrated resident jobs")]
    fn retiring_an_occupied_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.place(3, 0);
        store.begin_drain(0);
        store.retire(0);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn draining_a_retired_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.retire(0);
        store.begin_drain(0);
    }

    #[test]
    fn migration_moves_the_slot_atomically() {
        let mut store = PlacementStore::new(2, 1);
        store.place(5, 0);
        store.migrate(5, 0, 1);
        assert!(store.server(0).resident.is_empty());
        assert_eq!(store.server(1).resident, vec![5]);
        assert_eq!(store.running_jobs(), 1);
    }

    #[test]
    fn added_servers_get_dense_ids_and_fresh_state() {
        let mut store = PlacementStore::new(1, 1);
        let id =
            store.add_server(ServerCapacity::from_config(&ServerConfig::newer_skylake(), 2, 2));
        assert_eq!(id, 1);
        assert_eq!(store.server(1).cores, 48);
        assert!(store.server(1).is_active());
        // Cold-start slack comes from the first sampled load, as for the
        // original fleet.
        store.set_load(1, 0.9);
        assert!((store.server(1).slack - 0.1).abs() < 1e-12);
    }

    #[test]
    fn emptying_a_server_resets_its_disabled_streak() {
        let mut store = PlacementStore::new(1, 2);
        store.place(7, 0);
        store.place(8, 0);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // One job leaving does not end the occupancy episode...
        store.release(7, 0);
        assert_eq!(store.server(0).disabled_streak, 2);
        // ...but the last one does: the next placement gets fresh grace.
        store.release(8, 0);
        assert_eq!(store.server(0).disabled_streak, 0);
    }
}
