//! The placement store: the scheduler's view of every server's live state.
//!
//! Mirrors the placement-store shape of cluster managers (a central table of
//! per-host capacity and health that schedulers consult and commit into),
//! specialised to what matters under Heracles: besides BE slot occupancy,
//! each entry carries the server's current LC load from the diurnal trace
//! and the latency slack / admission verdict observed from its per-server
//! controller over the most recent step.  Placement policies read this table;
//! the fleet simulator is the only writer.

use heracles_hw::ServerConfig;
use heracles_sim::SimTime;
use heracles_telemetry::TraceEvent;
use heracles_workloads::{BeKind, LcKind, LcWorkload, NUM_SERVICES};
use serde::{Deserialize, Serialize};

use crate::job::JobId;

/// Identifier of a server within the fleet (dense, starting at 0).
pub type ServerId = usize;

/// Core count of the reference (Haswell) generation: the yardstick against
/// which per-server capacity is normalized — BE slot counts and the
/// policies' occupancy penalties both scale with `cores / REFERENCE_CORES`.
pub const REFERENCE_CORES: usize = 36;

/// Peak DRAM bandwidth of the reference (Haswell) generation, in GB/s.
pub const REFERENCE_DRAM_GBPS: f64 = 120.0;

/// Latency slack at or below which a server is considered too close to its
/// SLO to accept new BE work.
///
/// Heracles deliberately runs servers *hot*: a websearch leaf at ~80% load
/// under its controller settles a few percent under its SLO (Figure 4), and
/// that is healthy steady state, not distress — a positive-slack floor
/// would permanently exclude every server at its controller-managed
/// equilibrium.  So admission only screens out servers currently *at or
/// over* their SLO; the load ceiling below guards the latency knee, and the
/// controller's own admission verdict covers everything in between.
pub const ADMISSION_SLACK_FLOOR: f64 = 0.0;

/// LC load at or above which the paper's controller will not *re-enable*
/// BE execution: a job placed on a hotter server whose controller is not
/// already running BE sits disabled until it is preempted.
pub const ADMISSION_LOAD_CEILING: f64 = 0.80;

/// LC load at or above which the paper's controller *disables* BE outright.
/// Between the two thresholds the controller is hysteretic: a server that
/// enabled BE during a load dip keeps running it until load crosses this
/// line, so a server observed with BE enabled stays placeable up to here —
/// Heracles colocates right up to its knee, and refusing the 0.80–0.85 band
/// wholesale would waste exactly the servers the paper runs hottest.
pub const ADMISSION_LOAD_DISABLE: f64 = 0.85;

/// The static capacity of one server, as the scheduler sees it.
///
/// In a heterogeneous fleet every entry carries its own capacity, and in a
/// mixed-service fleet every entry is a (generation × service) cell: the
/// scheduler never assumes the fleet is uniform in either dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCapacity {
    /// Physical core count.
    pub cores: usize,
    /// Peak streaming DRAM bandwidth across all sockets, in GB/s.
    pub dram_peak_gbps: f64,
    /// How many BE jobs the server may host at once.
    pub be_slots: usize,
    /// Index of the server's hardware generation (see
    /// [`Generation`](crate::Generation)).
    pub generation: usize,
    /// The LC service this leaf serves.
    pub service: LcKind,
    /// Peak QPS of this leaf for its service (the service's reference peak
    /// scaled to the leaf's compute capacity) — the weight the traffic
    /// plane's balancers route by.
    pub peak_qps: f64,
}

impl ServerCapacity {
    /// Derives a websearch-leaf capacity record from a hardware
    /// configuration (the single-service shim over
    /// [`for_service`](Self::for_service)).
    ///
    /// `be_slots_per_reference` is the BE slot count a reference
    /// ([`REFERENCE_CORES`]-core Haswell) server gets; other generations
    /// scale it with their core count, rounded, with a floor of one slot —
    /// a 48-core box hosts proportionally more jobs than a 16-core one.
    pub fn from_config(
        config: &ServerConfig,
        be_slots_per_reference: usize,
        generation: usize,
    ) -> Self {
        let ratio = config.total_cores() as f64 / REFERENCE_CORES as f64;
        Self::for_service(
            config,
            be_slots_per_reference,
            generation,
            LcKind::Websearch,
            LcWorkload::websearch().peak_qps() * ratio,
        )
    }

    /// Derives a capacity record for a leaf of `service` on the given
    /// hardware: BE slots scale with the core count relative to the
    /// reference generation, while `peak_qps` is supplied by the caller —
    /// it must be the peak of the *workload profile the leaf actually
    /// runs* (the fleet scales profiles against its own baseline, which is
    /// not always the reference generation), and it is the weight the
    /// traffic plane routes by.
    pub fn for_service(
        config: &ServerConfig,
        be_slots_per_reference: usize,
        generation: usize,
        service: LcKind,
        peak_qps: f64,
    ) -> Self {
        assert!(peak_qps.is_finite() && peak_qps > 0.0, "leaf peak QPS must be positive");
        let cores = config.total_cores();
        let scaled = (be_slots_per_reference * cores + REFERENCE_CORES / 2) / REFERENCE_CORES;
        ServerCapacity {
            cores,
            dram_peak_gbps: config.dram_peak_gbps(),
            be_slots: scaled.max(1),
            generation,
            service,
            peak_qps,
        }
    }

    /// A reference-generation websearch capacity (used by the homogeneous
    /// constructors and tests).
    pub fn reference(be_slots: usize) -> Self {
        ServerCapacity {
            cores: REFERENCE_CORES,
            dram_peak_gbps: REFERENCE_DRAM_GBPS,
            be_slots,
            generation: 1,
            service: LcKind::Websearch,
            peak_qps: LcWorkload::websearch().peak_qps(),
        }
    }
}

/// Lifecycle state of a server in an elastic fleet.
///
/// A static fleet keeps every server [`Active`](ServerState::Active) for the
/// whole run.  Under an autoscaler, scale-in first marks a server
/// [`Draining`](ServerState::Draining) — it stops admitting new BE work but
/// keeps serving its LC traffic and its resident jobs until they are
/// live-migrated away — and only an *empty* draining server may be
/// [`Retired`](ServerState::Retired) (decommissioned: it stops stepping,
/// stops costing TCO, and never hosts work again).  Retired entries stay in
/// the table so server ids remain dense and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerState {
    /// In service: steps, serves LC traffic and may admit BE jobs.
    Active,
    /// Scheduled for removal: still steps and serves LC traffic, but admits
    /// no new BE work while its residents are migrated away.
    Draining,
    /// Decommissioned: no longer steps, costs nothing, hosts nothing.
    Retired,
}

/// What the store knows about one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerEntry {
    /// The server's identifier.
    pub id: ServerId,
    /// Where the server is in its lifecycle (always
    /// [`ServerState::Active`] in a static fleet).
    pub state: ServerState,
    /// Physical core count (per-server capacity; heterogeneous fleets mix
    /// generations with different counts).
    pub cores: usize,
    /// Peak DRAM bandwidth, in GB/s.
    pub dram_peak_gbps: f64,
    /// Index of the server's hardware generation.
    pub generation: usize,
    /// The LC service this leaf serves (entries are (generation × service)
    /// cells in a mixed fleet).
    pub service: LcKind,
    /// Peak QPS of this leaf for its service — the weight the traffic
    /// plane's balancers route by.
    pub peak_qps: f64,
    /// How many BE jobs the server may host at once.
    pub be_slots: usize,
    /// Jobs currently resident (placed and not yet completed or preempted).
    pub resident: Vec<JobId>,
    /// The BE workload kind currently attached to the server's runner (its
    /// head resident job's kind), if any.  Placing a job of the same kind
    /// lets it share — and later seamlessly inherit — the already-grown BE
    /// allocation instead of restarting the controller's conservative ramp.
    pub attached_kind: Option<BeKind>,
    /// LC load offered during the current step (fraction of peak).
    pub lc_load: f64,
    /// Per-step change of the LC load (this step minus the previous one):
    /// the diurnal trajectory signal a monitoring pipeline would expose.
    /// Positive on servers climbing towards their peak.
    pub load_trend: f64,
    /// Whether `lc_load` has been set at least once (trend is meaningless
    /// before that).
    seen_load: bool,
    /// Whether the server's controller has reported at least one step of
    /// observations (before that, `slack` is an estimate, not a
    /// measurement).
    seen_observation: bool,
    /// Whether the server's Heracles controller currently allows BE
    /// execution.
    pub be_admitted: bool,
    /// Latency slack observed over the most recent step: `1 -` the worst
    /// window's SLO-normalized latency.  Positive means healthy.  Until the
    /// first observation arrives this is estimated from the sampled LC load
    /// (`1 - load`), not assumed perfect — blanket cold-start optimism used
    /// to pile step-0 jobs onto servers already near their latency knee.
    pub slack: f64,
    /// Effective Machine Utilization of the most recent window.
    pub recent_emu: f64,
    /// Normalized BE throughput of the most recent window.
    pub recent_be_throughput: f64,
    /// Consecutive steps the server sat occupied with BE execution disabled
    /// (the preemption trigger).
    pub disabled_streak: usize,
    /// Whether the fleet's power-cap coordinator is currently throttling BE
    /// admission cluster-wide (the budget is tight enough that DVFS alone
    /// would make latency-critical work pay for best-effort joules).  Set
    /// on every entry by [`PlacementStore::set_power_throttled`]; folded
    /// into [`admits_be`](Self::admits_be) so every placement policy
    /// observes the throttle without knowing about the energy plane.
    pub power_throttled: bool,
}

impl ServerEntry {
    /// True while the server is in service (active or draining): it steps,
    /// serves LC traffic and costs TCO.
    pub fn in_service(&self) -> bool {
        self.state != ServerState::Retired
    }

    /// True if the server may accept new BE work as far as its lifecycle is
    /// concerned (draining and retired servers never do).
    pub fn is_active(&self) -> bool {
        self.state == ServerState::Active
    }

    /// Number of unoccupied BE slots.
    pub fn free_slots(&self) -> usize {
        self.be_slots.saturating_sub(self.resident.len())
    }

    /// True if at least one BE slot is unoccupied.
    pub fn has_free_slot(&self) -> bool {
        self.free_slots() > 0
    }

    /// True if the server is healthy enough to accept new BE work: in
    /// service and not draining, a free
    /// slot, a controller that currently allows BE execution, positive
    /// latency slack (the server is not at or over its SLO), and load
    /// within the controller's hysteresis envelope — below the re-enable
    /// threshold for a server whose controller has not been observed
    /// running BE, below the disable threshold for one that has.
    ///
    /// The `be_admitted` check matters even when load and slack look fine:
    /// a controller that has disabled BE holds new jobs at zero progress
    /// until they burn their preemption grace, so placing onto such a server
    /// is strictly worse than leaving the job queued one more step.
    pub fn admits_be(&self) -> bool {
        self.has_free_slot() && self.admits_be_static()
    }

    /// The slot-independent part of [`admits_be`](Self::admits_be):
    /// lifecycle, controller verdict, slack and the hysteretic load ceiling.
    ///
    /// Within one dispatch round only slot occupancy changes (placements
    /// commit between `place` calls; loads, slacks and verdicts are fixed
    /// until the next step), so the batch-dispatch plans evaluate this once
    /// per server per round and track free slots separately.
    pub(crate) fn admits_be_static(&self) -> bool {
        let ceiling = if self.seen_observation && self.be_admitted {
            ADMISSION_LOAD_DISABLE
        } else {
            ADMISSION_LOAD_CEILING
        };
        self.is_active()
            && !self.power_throttled
            && self.be_admitted
            && self.slack > ADMISSION_SLACK_FLOOR
            && self.lc_load < ceiling
    }

    /// The LC load projected `horizon` steps ahead by linear extrapolation
    /// of the current trend, clamped to `[0, 1]`.
    pub fn projected_load(&self, horizon: f64) -> f64 {
        (self.lc_load + self.load_trend * horizon).clamp(0.0, 1.0)
    }

    /// A structured snapshot of this server's admission state, for the
    /// fleet's flight recorder: the verdict plus every input that feeds it
    /// (controller permission, slack, load, slots, lifecycle, streak), so a
    /// trace reader can see *why* the verdict flipped, not just that it did.
    pub fn admission_trace(&self, now: SimTime) -> TraceEvent {
        TraceEvent::new(now, "store", "admission")
            .u64("server", self.id as u64)
            .str("service", self.service.name())
            .u64("generation", self.generation as u64)
            .bool("admits", self.admits_be())
            .bool("be_admitted", self.be_admitted)
            .str(
                "state",
                match self.state {
                    ServerState::Active => "active",
                    ServerState::Draining => "draining",
                    ServerState::Retired => "retired",
                },
            )
            .f64("slack", self.slack)
            .f64("load", self.lc_load)
            .u64("free_slots", self.free_slots() as u64)
            .u64("disabled_streak", self.disabled_streak as u64)
    }
}

/// How the store partitions its shard index.
///
/// Both modes expose identical observable behavior — the shards are an
/// index over the same server table, never a source of truth — so sharded
/// and unsharded runs of the same seed produce identical schedules (pinned
/// by the shard-equivalence property test).  `Single` exists as the
/// reference point for that test and for apples-to-apples benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ShardingMode {
    /// One shard per (generation × service) pool — the default.  Placement
    /// policies score shards independently (in parallel on large fleets)
    /// and a cheap global reduce picks the winner.
    #[default]
    PerPool,
    /// A single shard holding the whole fleet (the unsharded reference).
    Single,
}

/// One pool shard: the in-service members of a (generation × service) cell,
/// in ascending id order.
///
/// Shards partition the in-service fleet; retired servers belong to no
/// shard.  Policies use them as parallel scan units during batch dispatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolShard {
    /// The (generation index, service) cell, or `None` for the single
    /// whole-fleet shard of [`ShardingMode::Single`].
    cell: Option<(usize, LcKind)>,
    /// In-service member ids, ascending.
    members: Vec<ServerId>,
}

impl PoolShard {
    /// The (generation index, service) cell this shard indexes, or `None`
    /// for the single whole-fleet shard.
    pub fn cell(&self) -> Option<(usize, LcKind)> {
        self.cell
    }

    /// In-service member ids, in ascending order.
    pub fn members(&self) -> &[ServerId] {
        &self.members
    }
}

/// The fleet-wide placement table.
///
/// Besides the per-server entries, the store maintains incremental indices
/// — pool shards, per-service leaf lists and integer aggregate counters —
/// kept in sync by every lifecycle mutator, so the aggregate accessors and
/// the traffic plane's per-service scans are O(pool) instead of O(fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStore {
    servers: Vec<ServerEntry>,
    last_updated: SimTime,
    sharding: ShardingMode,
    /// Pool shards partitioning the in-service fleet (see [`PoolShard`]).
    shards: Vec<PoolShard>,
    /// Shard index of each server id (meaningless once retired).
    shard_of: Vec<usize>,
    /// In-service leaf ids per service, ascending — the traffic plane's
    /// routing pools, and the iteration order that keeps the per-service
    /// peak-QPS float sums bit-identical to a full-fleet filtered scan.
    service_leaves: [Vec<ServerId>; NUM_SERVICES],
    active_count: usize,
    draining_count: usize,
    in_service_cores_total: usize,
    in_service_gen_counts: [usize; 3],
    in_service_service_counts: [usize; NUM_SERVICES],
    running_jobs_total: usize,
    /// Fleet-wide BE-admission power throttle (mirrored onto every entry so
    /// placement policies see it through [`ServerEntry::admits_be`]).
    power_throttled: bool,
}

impl PlacementStore {
    /// Creates a store for `servers` reference-generation hosts with
    /// `be_slots` job slots each (the homogeneous fleet).
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `be_slots` is zero.
    pub fn new(servers: usize, be_slots: usize) -> Self {
        assert!(be_slots > 0, "servers need at least one BE slot");
        Self::heterogeneous(&vec![ServerCapacity::reference(be_slots); servers])
    }

    /// Creates a store with one entry per capacity record (the
    /// heterogeneous fleet), with the default per-pool sharding.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any entry has zero cores or BE
    /// slots.
    pub fn heterogeneous(capacities: &[ServerCapacity]) -> Self {
        Self::heterogeneous_with_sharding(capacities, ShardingMode::default())
    }

    /// Creates a heterogeneous store with an explicit [`ShardingMode`].
    /// Sharding never changes observable behavior — it only sets the shape
    /// of the scan units the batch-dispatch plans parallelize over.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any entry has zero cores or BE
    /// slots.
    pub fn heterogeneous_with_sharding(
        capacities: &[ServerCapacity],
        sharding: ShardingMode,
    ) -> Self {
        assert!(!capacities.is_empty(), "a fleet needs at least one server");
        let mut store = PlacementStore {
            servers: Vec::with_capacity(capacities.len()),
            last_updated: SimTime::ZERO,
            sharding,
            shards: Vec::new(),
            shard_of: Vec::new(),
            service_leaves: Default::default(),
            active_count: 0,
            draining_count: 0,
            in_service_cores_total: 0,
            in_service_gen_counts: [0; 3],
            in_service_service_counts: [0; NUM_SERVICES],
            running_jobs_total: 0,
            power_throttled: false,
        };
        for cap in capacities {
            store.push_server(cap);
        }
        store
    }

    /// Appends a fresh active entry and threads it into every index.
    fn push_server(&mut self, cap: &ServerCapacity) -> ServerId {
        let id = self.servers.len();
        let mut entry = Self::entry_for(id, cap);
        // A box commissioned while the fleet is power-throttled joins
        // throttled: the budget does not loosen because capacity grew.
        entry.power_throttled = self.power_throttled;
        self.servers.push(entry);
        let key = match self.sharding {
            ShardingMode::PerPool => Some((cap.generation, cap.service)),
            ShardingMode::Single => None,
        };
        let shard = match self.shards.iter().position(|s| s.cell == key) {
            Some(idx) => idx,
            None => {
                self.shards.push(PoolShard { cell: key, members: Vec::new() });
                self.shards.len() - 1
            }
        };
        // Ids are dense and increasing, so pushing keeps members ascending.
        self.shards[shard].members.push(id);
        self.shard_of.push(shard);
        self.service_leaves[cap.service.index()].push(id);
        self.active_count += 1;
        self.in_service_cores_total += cap.cores;
        if let Some(slot) = self.in_service_gen_counts.get_mut(cap.generation) {
            *slot += 1;
        }
        self.in_service_service_counts[cap.service.index()] += 1;
        id
    }

    /// Drops a server out of the in-service indices (retirement).
    fn unindex_server(&mut self, id: ServerId) {
        let entry = &self.servers[id];
        match entry.state {
            ServerState::Active => self.active_count -= 1,
            ServerState::Draining => self.draining_count -= 1,
            ServerState::Retired => unreachable!("server {id} unindexed twice"),
        }
        self.in_service_cores_total -= entry.cores;
        let (generation, service) = (entry.generation, entry.service);
        if let Some(slot) = self.in_service_gen_counts.get_mut(generation) {
            *slot -= 1;
        }
        self.in_service_service_counts[service.index()] -= 1;
        let members = &mut self.shards[self.shard_of[id]].members;
        let idx = members.binary_search(&id).expect("in-service server is in its shard");
        members.remove(idx);
        let leaves = &mut self.service_leaves[service.index()];
        let idx = leaves.binary_search(&id).expect("in-service leaf is in its service pool");
        leaves.remove(idx);
    }

    fn entry_for(id: ServerId, cap: &ServerCapacity) -> ServerEntry {
        assert!(cap.cores > 0, "server {id} needs at least one core");
        assert!(cap.be_slots > 0, "server {id} needs at least one BE slot");
        ServerEntry {
            id,
            state: ServerState::Active,
            cores: cap.cores,
            dram_peak_gbps: cap.dram_peak_gbps,
            generation: cap.generation,
            service: cap.service,
            peak_qps: cap.peak_qps,
            be_slots: cap.be_slots,
            resident: Vec::new(),
            attached_kind: None,
            lc_load: 0.0,
            load_trend: 0.0,
            seen_load: false,
            seen_observation: false,
            be_admitted: true,
            slack: 1.0,
            recent_emu: 0.0,
            recent_be_throughput: 0.0,
            disabled_streak: 0,
            power_throttled: false,
        }
    }

    /// Commissions a new server (autoscaler scale-out), returning its id.
    /// The new entry starts [`ServerState::Active`] with no load history —
    /// the cold-start slack estimate applies until its controller reports.
    ///
    /// # Panics
    ///
    /// Panics if the capacity has zero cores or BE slots.
    pub fn add_server(&mut self, cap: ServerCapacity) -> ServerId {
        self.push_server(&cap)
    }

    /// Marks a server as draining (autoscaler scale-in, phase one): it stops
    /// admitting new BE work while its residents are migrated away.  A
    /// no-op on a server already draining.
    ///
    /// # Panics
    ///
    /// Panics if the server is retired — a decommissioned box cannot drain.
    pub fn begin_drain(&mut self, id: ServerId) {
        let entry = &mut self.servers[id];
        assert!(entry.state != ServerState::Retired, "server {id} is already retired");
        if entry.state == ServerState::Active {
            self.active_count -= 1;
            self.draining_count += 1;
        }
        self.servers[id].state = ServerState::Draining;
    }

    /// Returns a draining server to active service (a cancelled scale-in).
    ///
    /// # Panics
    ///
    /// Panics if the server is retired.
    pub fn reactivate(&mut self, id: ServerId) {
        let entry = &mut self.servers[id];
        assert!(entry.state != ServerState::Retired, "server {id} is already retired");
        if entry.state == ServerState::Draining {
            self.draining_count -= 1;
            self.active_count += 1;
        }
        self.servers[id].state = ServerState::Active;
    }

    /// Retires a drained server (autoscaler scale-in, phase two).  This is
    /// the invariant the autoscaler's property tests pin: a server may only
    /// leave the fleet once every resident job has been migrated away.
    ///
    /// # Panics
    ///
    /// Panics if the server still hosts resident jobs.
    pub fn retire(&mut self, id: ServerId) {
        let entry = &self.servers[id];
        assert!(
            entry.resident.is_empty(),
            "server {id} retired with {} unmigrated resident jobs",
            entry.resident.len()
        );
        if entry.state != ServerState::Retired {
            self.unindex_server(id);
        }
        let entry = &mut self.servers[id];
        entry.state = ServerState::Retired;
        entry.be_admitted = false;
        entry.disabled_streak = 0;
    }

    /// Live-migrates a job between servers: releases its slot on `from` and
    /// occupies one on `to` in a single committed move (the job never passes
    /// through the queue).
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on `from`, `to` has no free slot,
    /// or `from == to`.
    pub fn migrate(&mut self, job: JobId, from: ServerId, to: ServerId) {
        assert_ne!(from, to, "job {job} migrated onto its own server {from}");
        self.release(job, from);
        self.place(job, to);
    }

    /// Number of servers currently active (in service and not draining).
    pub fn active_servers(&self) -> usize {
        self.active_count
    }

    /// Number of servers currently draining.
    pub fn draining_servers(&self) -> usize {
        self.draining_count
    }

    /// Total core count across in-service (active or draining) servers.
    pub fn in_service_cores(&self) -> usize {
        self.in_service_cores_total
    }

    /// How many in-service servers run each generation, indexed by
    /// generation index (older, Haswell, newer).
    pub fn in_service_by_generation(&self) -> [usize; 3] {
        self.in_service_gen_counts
    }

    /// How many in-service leaves serve each LC service, indexed by
    /// [`LcKind::index`] (websearch, ml_cluster, memkeyval).
    pub fn in_service_by_service(&self) -> [usize; NUM_SERVICES] {
        self.in_service_service_counts
    }

    /// Number of in-service leaves serving one service — the pool the
    /// traffic plane routes that service's demand across.  A fleet must
    /// never retire the last leaf of a service it still serves: the
    /// service's traffic would have nowhere to go.
    pub fn in_service_leaves(&self, service: LcKind) -> usize {
        self.service_leaves[service.index()].len()
    }

    /// In-service leaf ids of one service, in ascending id order — the
    /// pool the traffic plane routes across, maintained incrementally on
    /// `add_server`/`retire` instead of rebuilt from a full-fleet filter
    /// every step.
    pub fn service_leaf_ids(&self, service: LcKind) -> &[ServerId] {
        &self.service_leaves[service.index()]
    }

    /// Total in-service peak QPS of one service's leaf pool (the
    /// denominator that turns the service's offered QPS into a per-leaf
    /// load fraction under capacity-weighted routing).
    ///
    /// Sums the per-service leaf list in ascending id order — the same
    /// addition order as a filtered full-fleet scan, so the result is
    /// bit-identical whatever the sharding mode.
    pub fn in_service_peak_qps(&self, service: LcKind) -> f64 {
        self.service_leaves[service.index()].iter().map(|&id| self.servers[id].peak_qps).sum()
    }

    /// The store's sharding mode.
    pub fn sharding(&self) -> ShardingMode {
        self.sharding
    }

    /// The pool shards partitioning the in-service fleet — the scan units
    /// placement policies parallelize over during batch dispatch.
    pub fn shards(&self) -> &[PoolShard] {
        &self.shards
    }

    /// All per-server entries, indexed by server id.
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// One server's entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server(&self, id: ServerId) -> &ServerEntry {
        &self.servers[id]
    }

    /// When the store last absorbed step observations.
    pub fn last_updated(&self) -> SimTime {
        self.last_updated
    }

    /// Total BE jobs currently resident across the fleet.
    pub fn running_jobs(&self) -> usize {
        self.running_jobs_total
    }

    /// Every server's current admission verdict ([`ServerEntry::admits_be`]),
    /// indexed by id — the baseline the fleet's telemetry plane diffs after
    /// each step so only verdict *flips* reach the flight recorder.
    pub fn admission_verdicts(&self) -> Vec<bool> {
        self.servers.iter().map(ServerEntry::admits_be).collect()
    }

    /// Commits a placement.
    ///
    /// # Panics
    ///
    /// Panics if the server has no free slot or already hosts the job — a
    /// placement policy returning such a server is a scheduler bug, and the
    /// property tests lean on this assert.
    pub fn place(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        assert!(
            entry.resident.len() < entry.be_slots,
            "placement exceeds server {server}'s {} BE slots",
            entry.be_slots
        );
        assert!(!entry.resident.contains(&job), "job {job} already resident on server {server}");
        entry.resident.push(job);
        self.running_jobs_total += 1;
    }

    /// Releases a job's slot (completion or preemption).
    ///
    /// # Panics
    ///
    /// Panics if the job is not resident on the server.
    pub fn release(&mut self, job: JobId, server: ServerId) {
        let entry = &mut self.servers[server];
        let idx = entry
            .resident
            .iter()
            .position(|&j| j == job)
            .unwrap_or_else(|| panic!("job {job} is not resident on server {server}"));
        entry.resident.remove(idx);
        self.running_jobs_total -= 1;
        if self.servers[server].resident.is_empty() {
            // The streak tracks one occupancy episode; once the last job
            // leaves, a future placement starts its grace period afresh.
            self.servers[server].disabled_streak = 0;
        }
    }

    /// Whether the power-cap coordinator is currently throttling BE
    /// admission fleet-wide.
    pub fn power_throttled(&self) -> bool {
        self.power_throttled
    }

    /// Sets the fleet-wide BE-admission power throttle, mirroring it onto
    /// every entry so [`ServerEntry::admits_be`] observes it (Algorithm 3's
    /// "shave BE first", lifted to admission: under a tight watt budget no
    /// new best-effort work starts anywhere).
    pub fn set_power_throttled(&mut self, throttled: bool) {
        self.power_throttled = throttled;
        for entry in &mut self.servers {
            entry.power_throttled = throttled;
        }
    }

    /// Records which BE workload kind the server's runner currently has
    /// attached (kept in sync by the fleet simulator after attachment
    /// changes).
    pub fn set_attached_kind(&mut self, id: ServerId, kind: Option<BeKind>) {
        self.servers[id].attached_kind = kind;
    }

    /// Sets a server's LC load for the upcoming step (read by the policies
    /// during dispatch, before the step runs) and updates its load trend.
    ///
    /// Until the server's controller has reported an observation, the
    /// latency slack is re-estimated from the sampled load (`1 - load`):
    /// cold-start dispatch must not treat a never-observed server near its
    /// diurnal peak as perfectly healthy.
    pub fn set_load(&mut self, id: ServerId, lc_load: f64) {
        let entry = &mut self.servers[id];
        let load = lc_load.clamp(0.0, 1.0);
        entry.load_trend = if entry.seen_load { load - entry.lc_load } else { 0.0 };
        entry.seen_load = true;
        entry.lc_load = load;
        if !entry.seen_observation {
            entry.slack = 1.0 - load;
        }
    }

    /// Absorbs one server's observations after a step: the controller's
    /// admission verdict and the step's latency slack / utilization, plus the
    /// disabled-streak bookkeeping that drives preemption.
    pub fn observe(
        &mut self,
        id: ServerId,
        now: SimTime,
        slack: f64,
        recent_emu: f64,
        recent_be_throughput: f64,
        be_admitted: bool,
    ) {
        let entry = &mut self.servers[id];
        entry.seen_observation = true;
        entry.slack = slack;
        entry.recent_emu = recent_emu;
        entry.recent_be_throughput = recent_be_throughput;
        entry.be_admitted = be_admitted;
        if !entry.resident.is_empty() && !be_admitted {
            entry.disabled_streak += 1;
        } else {
            entry.disabled_streak = 0;
        }
        self.last_updated = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_occupies_and_release_frees_slots() {
        let mut store = PlacementStore::new(2, 2);
        assert_eq!(store.server(0).free_slots(), 2);
        store.place(10, 0);
        store.place(11, 0);
        assert!(!store.server(0).has_free_slot());
        assert!(store.server(1).has_free_slot());
        assert_eq!(store.running_jobs(), 2);
        store.release(10, 0);
        assert_eq!(store.server(0).free_slots(), 1);
        assert_eq!(store.server(0).resident, vec![11]);
    }

    #[test]
    #[should_panic(expected = "exceeds server")]
    fn overfilling_a_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.place(0, 0);
        store.place(1, 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn releasing_a_stranger_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.release(3, 0);
    }

    #[test]
    fn admission_requires_slack_and_a_slot() {
        let mut store = PlacementStore::new(1, 1);
        assert!(store.server(0).admits_be());
        // At or over the SLO (slack <= 0): no admission.
        store.observe(0, SimTime::from_secs(1), -0.2, 0.5, 0.0, true);
        assert!(!store.server(0).admits_be(), "no slack");
        // Tiny positive slack is Heracles' normal hot steady state.
        store.observe(0, SimTime::from_secs(2), 0.01, 0.5, 0.0, true);
        assert!(store.server(0).admits_be());
        store.place(0, 0);
        assert!(!store.server(0).admits_be(), "no slot");
    }

    #[test]
    fn admission_follows_the_controller_hysteresis() {
        let mut store = PlacementStore::new(1, 1);
        // Cold start in the hysteresis band: the controller would not
        // (re-)enable BE at 0.82 load, so placement is futile.
        store.set_load(0, 0.82);
        assert!(!store.server(0).admits_be(), "cold start in the band");
        // Observed with BE enabled at the same load: the controller keeps
        // running BE until 0.85, so the server stays placeable.
        store.observe(0, SimTime::from_secs(1), 0.1, 0.82, 0.2, true);
        assert!(store.server(0).admits_be(), "enabled within the band");
        // Past the disable threshold nothing admits.
        store.set_load(0, 0.86);
        assert!(!store.server(0).admits_be(), "past disable threshold");
        // And a disabled controller in the band falls back to the
        // re-enable ceiling.
        store.set_load(0, 0.82);
        store.observe(0, SimTime::from_secs(2), 0.1, 0.82, 0.0, false);
        assert!(!store.server(0).admits_be(), "disabled in the band");
    }

    #[test]
    fn admission_respects_the_controller_verdict() {
        let mut store = PlacementStore::new(1, 1);
        // Healthy load and slack, but the controller has BE disabled: a job
        // placed here would sit at zero progress until preempted.
        store.set_load(0, 0.3);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        assert!(!store.server(0).admits_be(), "BE disabled");
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.1, true);
        assert!(store.server(0).admits_be());
    }

    #[test]
    fn cold_start_slack_comes_from_the_first_sampled_load() {
        let mut store = PlacementStore::new(2, 1);
        // Never-observed servers estimate slack from load instead of
        // assuming perfect health.
        store.set_load(0, 0.97);
        assert!((store.server(0).slack - 0.03).abs() < 1e-12);
        assert!(!store.server(0).admits_be(), "near-peak cold start");
        store.set_load(1, 0.2);
        assert!((store.server(1).slack - 0.8).abs() < 1e-12);
        assert!(store.server(1).admits_be());
        // Once a real observation lands, set_load stops touching slack.
        store.observe(0, SimTime::from_secs(1), 0.6, 0.5, 0.0, true);
        store.set_load(0, 0.97);
        assert!((store.server(0).slack - 0.6).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_capacities_derive_slots_from_cores() {
        let older = ServerCapacity::from_config(&ServerConfig::older_sandy_bridge(), 2, 0);
        let haswell = ServerCapacity::from_config(&ServerConfig::default_haswell(), 2, 1);
        let newer = ServerCapacity::from_config(&ServerConfig::newer_skylake(), 2, 2);
        assert_eq!((older.cores, older.be_slots), (16, 1));
        assert_eq!((haswell.cores, haswell.be_slots), (36, 2));
        assert_eq!((newer.cores, newer.be_slots), (48, 3));
        // Even a tiny box keeps one slot.
        let tiny = ServerCapacity::from_config(&ServerConfig::small_test(), 1, 0);
        assert_eq!(tiny.be_slots, 1);

        let store = PlacementStore::heterogeneous(&[older, haswell, newer]);
        assert_eq!(store.server(0).be_slots, 1);
        assert_eq!(store.server(2).be_slots, 3);
        assert_eq!(store.server(2).generation, 2);
        assert!(store.server(0).dram_peak_gbps < store.server(2).dram_peak_gbps);
    }

    #[test]
    fn disabled_streak_counts_only_occupied_disabled_steps() {
        let mut store = PlacementStore::new(1, 1);
        // Unoccupied: a disabled controller is not a stuck job.
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 0);
        store.place(7, 0);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(3), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // Re-enablement resets the streak.
        store.observe(0, SimTime::from_secs(4), 0.5, 0.3, 0.1, true);
        assert_eq!(store.server(0).disabled_streak, 0);
        assert_eq!(store.last_updated(), SimTime::from_secs(4));
    }

    #[test]
    fn lifecycle_gates_admission_and_retirement() {
        let mut store = PlacementStore::new(2, 2);
        store.set_load(0, 0.3);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.4, 0.1, true);
        assert!(store.server(0).admits_be());
        assert_eq!(store.active_servers(), 2);

        // Draining stops admission but the server stays in service.
        store.begin_drain(0);
        assert!(!store.server(0).admits_be(), "draining server admitted work");
        assert!(store.server(0).in_service());
        assert_eq!(store.active_servers(), 1);
        assert_eq!(store.draining_servers(), 1);
        assert_eq!(store.in_service_cores(), 72);

        // A cancelled scale-in returns the server to service.
        store.reactivate(0);
        assert!(store.server(0).admits_be());

        // An empty draining server retires; a retired one drops out of the
        // in-service aggregates entirely.
        store.begin_drain(0);
        store.retire(0);
        assert!(!store.server(0).in_service());
        assert_eq!(store.in_service_cores(), 36);
        assert_eq!(store.in_service_by_generation(), [0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "unmigrated resident jobs")]
    fn retiring_an_occupied_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.place(3, 0);
        store.begin_drain(0);
        store.retire(0);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn draining_a_retired_server_panics() {
        let mut store = PlacementStore::new(1, 1);
        store.retire(0);
        store.begin_drain(0);
    }

    #[test]
    fn migration_moves_the_slot_atomically() {
        let mut store = PlacementStore::new(2, 1);
        store.place(5, 0);
        store.migrate(5, 0, 1);
        assert!(store.server(0).resident.is_empty());
        assert_eq!(store.server(1).resident, vec![5]);
        assert_eq!(store.running_jobs(), 1);
    }

    #[test]
    fn added_servers_get_dense_ids_and_fresh_state() {
        let mut store = PlacementStore::new(1, 1);
        let id =
            store.add_server(ServerCapacity::from_config(&ServerConfig::newer_skylake(), 2, 2));
        assert_eq!(id, 1);
        assert_eq!(store.server(1).cores, 48);
        assert!(store.server(1).is_active());
        // Cold-start slack comes from the first sampled load, as for the
        // original fleet.
        store.set_load(1, 0.9);
        assert!((store.server(1).slack - 0.1).abs() < 1e-12);
    }

    /// Recomputes every incremental index from the server table and asserts
    /// each one matches — the invariant every mutator must preserve.
    fn assert_index_matches_table(store: &PlacementStore) {
        let servers = store.servers();
        assert_eq!(store.active_servers(), servers.iter().filter(|s| s.is_active()).count());
        assert_eq!(
            store.draining_servers(),
            servers.iter().filter(|s| s.state == ServerState::Draining).count()
        );
        assert_eq!(
            store.in_service_cores(),
            servers.iter().filter(|s| s.in_service()).map(|s| s.cores).sum::<usize>()
        );
        assert_eq!(store.running_jobs(), servers.iter().map(|s| s.resident.len()).sum::<usize>());
        let mut sharded: Vec<ServerId> =
            store.shards().iter().flat_map(|s| s.members().iter().copied()).collect();
        sharded.sort_unstable();
        let in_service: Vec<ServerId> =
            servers.iter().filter(|s| s.in_service()).map(|s| s.id).collect();
        assert_eq!(sharded, in_service, "shards must partition the in-service fleet");
        for shard in store.shards() {
            assert!(shard.members().windows(2).all(|w| w[0] < w[1]), "members ascending");
            if let Some((generation, service)) = shard.cell() {
                for &id in shard.members() {
                    assert_eq!(servers[id].generation, generation);
                    assert_eq!(servers[id].service, service);
                }
            }
        }
        for s in servers.iter().filter(|s| s.in_service()) {
            let pool = store.service_leaf_ids(s.service);
            assert!(pool.binary_search(&s.id).is_ok(), "leaf {} missing from its pool", s.id);
        }
    }

    #[test]
    fn indices_track_lifecycle_churn() {
        let mut store = PlacementStore::new(3, 2);
        assert_index_matches_table(&store);
        store.place(1, 0);
        store.place(2, 1);
        store.begin_drain(1);
        assert_index_matches_table(&store);
        // Draining twice is a no-op, not a double decrement.
        store.begin_drain(1);
        assert_index_matches_table(&store);
        store.reactivate(1);
        store.reactivate(1);
        assert_index_matches_table(&store);
        store.release(2, 1);
        store.begin_drain(1);
        store.retire(1);
        assert_index_matches_table(&store);
        // Retiring straight from active is legal once empty.
        store.release(1, 0);
        store.retire(0);
        assert_index_matches_table(&store);
        let id = store.add_server(ServerCapacity::reference(2));
        assert_eq!(id, 3);
        assert_index_matches_table(&store);
        assert_eq!(store.in_service_leaves(LcKind::Websearch), 2);
    }

    #[test]
    fn single_mode_keeps_one_shard_and_identical_aggregates() {
        let caps = vec![
            ServerCapacity::from_config(&ServerConfig::older_sandy_bridge(), 2, 0),
            ServerCapacity::from_config(&ServerConfig::default_haswell(), 2, 1),
            ServerCapacity::from_config(&ServerConfig::newer_skylake(), 2, 2),
        ];
        let sharded = PlacementStore::heterogeneous_with_sharding(&caps, ShardingMode::PerPool);
        let single = PlacementStore::heterogeneous_with_sharding(&caps, ShardingMode::Single);
        assert_eq!(sharded.shards().len(), 3);
        assert_eq!(single.shards().len(), 1);
        assert_eq!(single.shards()[0].cell(), None);
        assert_eq!(single.shards()[0].members(), &[0, 1, 2]);
        assert_index_matches_table(&sharded);
        assert_index_matches_table(&single);
        assert_eq!(sharded.servers(), single.servers());
        assert_eq!(
            sharded.in_service_peak_qps(LcKind::Websearch).to_bits(),
            single.in_service_peak_qps(LcKind::Websearch).to_bits(),
            "peak QPS sums must be bit-identical across sharding modes"
        );
    }

    #[test]
    fn service_pools_stay_ascending_across_churn() {
        let mut store = PlacementStore::new(4, 1);
        store.begin_drain(2);
        store.retire(2);
        assert_eq!(store.service_leaf_ids(LcKind::Websearch), &[0, 1, 3]);
        let id = store.add_server(ServerCapacity::reference(1));
        assert_eq!(store.service_leaf_ids(LcKind::Websearch), &[0, 1, 3, id]);
        assert_index_matches_table(&store);
    }

    #[test]
    fn emptying_a_server_resets_its_disabled_streak() {
        let mut store = PlacementStore::new(1, 2);
        store.place(7, 0);
        store.place(8, 0);
        store.observe(0, SimTime::from_secs(1), 0.5, 0.3, 0.0, false);
        store.observe(0, SimTime::from_secs(2), 0.5, 0.3, 0.0, false);
        assert_eq!(store.server(0).disabled_streak, 2);
        // One job leaving does not end the occupancy episode...
        store.release(7, 0);
        assert_eq!(store.server(0).disabled_streak, 2);
        // ...but the last one does: the next placement gets fresh grace.
        store.release(8, 0);
        assert_eq!(store.server(0).disabled_streak, 0);
    }
}
