//! The fleet-wide energy plane (paper §5, lifted from one leaf to the
//! whole fleet).
//!
//! The per-leaf power machinery — the package power model in
//! `heracles_hw::PowerModel` and the Algorithm-3 power sub-controller —
//! already reproduces RAPL-guided DVFS on a single server.  This crate
//! adds the three fleet-level pieces the paper's TCO story needs:
//!
//! * [`EnergyPriceSchedule`] / [`EnergyConfig`] — time-of-day electricity
//!   pricing (flat, peak/off-peak, or a carbon-intensity curve) that turns
//!   joules into dollars beside amortized capex,
//! * [`EnergyMeter`] — deterministic per-leaf / per-(service × generation)
//!   pool / fleet joule ledgers, integrated from the package watts each
//!   measurement window reports.  Metering is a pure read-only shadow of
//!   the simulation: switching it on changes no simulated outcome,
//! * [`PowerCapCoordinator`] — distributes a cluster watt budget into
//!   per-leaf RAPL-style package caps (and a fleet BE-admission throttle
//!   when the budget is tight), shaving best-effort work first and
//!   defending latency-critical frequency last, mirroring Algorithm 3's
//!   ordering.
//!
//! Everything here is analytic and deterministic — no wall-clock, no RNG —
//! so energy ledgers are bitwise reproducible for a seed and identical
//! between the stepped and event-driven simulation cores.

mod cap;
mod meter;
mod price;

pub use cap::{
    CapPlan, LeafCapAssignment, PowerCapCoordinator, BE_THROTTLE_FRACTION, CAP_OVERSHOOT,
};
pub use meter::{EnergyLedger, EnergyMeter};
pub use price::{hour_of_day, joules_to_dollars, EnergyConfig, EnergyPriceSchedule};
