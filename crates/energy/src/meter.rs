//! Deterministic energy ledgers: per-leaf, per-(service × generation) pool,
//! and fleet totals.

use std::collections::BTreeMap;

/// One ledger row: accumulated joules and their dollar cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    /// Accumulated package energy in joules of represented time.
    pub joules: f64,
    /// The same energy priced through the time-of-day schedule, in dollars.
    pub dollars: f64,
}

impl EnergyLedger {
    fn charge(&mut self, joules: f64, dollars: f64) {
        self.joules += joules;
        self.dollars += dollars;
    }
}

/// The fleet energy meter.
///
/// Ledgers are keyed by leaf id and by `(service, generation)` pool; all
/// maps are `BTreeMap` so iteration — and therefore every exported summary
/// — is deterministic.  The meter is a pure observer: the fleet feeds it
/// the per-leaf joules each step already computed by the simulation, so
/// installing it changes no simulated outcome.
///
/// Conservation holds by construction *and* is checked: the fleet total
/// and both ledger families are accumulated from the same per-leaf charges
/// in the same order, so `fleet == Σ pools == Σ leaves` bitwise-exactly
/// never drifts; [`conservation_error`](Self::conservation_error) exposes
/// the residual for the doctor's cross-check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    leaves: BTreeMap<u64, EnergyLedger>,
    pools: BTreeMap<(&'static str, &'static str), EnergyLedger>,
    fleet: EnergyLedger,
    /// Leaf-step observations recorded.
    observations: u64,
}

impl EnergyMeter {
    /// An empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges one leaf-step of energy to every ledger level.
    pub fn observe_leaf(
        &mut self,
        leaf: u64,
        service: &'static str,
        generation: &'static str,
        joules: f64,
        dollars: f64,
    ) {
        self.leaves.entry(leaf).or_default().charge(joules, dollars);
        self.pools.entry((service, generation)).or_default().charge(joules, dollars);
        self.fleet.charge(joules, dollars);
        self.observations += 1;
    }

    /// Fleet-total ledger.
    pub fn fleet(&self) -> EnergyLedger {
        self.fleet
    }

    /// Leaf-step observations recorded so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Per-leaf ledgers in leaf-id order.
    pub fn leaves(&self) -> impl Iterator<Item = (u64, &EnergyLedger)> {
        self.leaves.iter().map(|(&id, l)| (id, l))
    }

    /// Per-(service, generation) pool ledgers in key order.
    pub fn pools(&self) -> impl Iterator<Item = ((&'static str, &'static str), &EnergyLedger)> {
        self.pools.iter().map(|(&k, l)| (k, l))
    }

    /// The `k` leaves that burned the most joules, hungriest first (ties
    /// break toward the lower leaf id, so the ranking is deterministic).
    pub fn top_leaves(&self, k: usize) -> Vec<(u64, EnergyLedger)> {
        let mut rows: Vec<(u64, EnergyLedger)> =
            self.leaves.iter().map(|(&id, &l)| (id, l)).collect();
        rows.sort_by(|a, b| b.1.joules.total_cmp(&a.1.joules).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// How far the three ledger levels disagree:
    /// `|fleet − Σ pools| + |fleet − Σ leaves|` in joules.  Zero up to
    /// float summation order; the doctor's conservation cross-check fails
    /// a run whose error exceeds a relative epsilon.
    pub fn conservation_error(&self) -> f64 {
        let pool_sum: f64 = self.pools.values().map(|l| l.joules).sum();
        let leaf_sum: f64 = self.leaves.values().map(|l| l.joules).sum();
        (self.fleet.joules - pool_sum).abs() + (self.fleet.joules - leaf_sum).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledgers_accumulate_at_every_level() {
        let mut m = EnergyMeter::new();
        m.observe_leaf(0, "websearch", "haswell", 100.0, 0.01);
        m.observe_leaf(1, "websearch", "haswell", 50.0, 0.005);
        m.observe_leaf(2, "memkeyval", "skylake", 25.0, 0.002);
        m.observe_leaf(0, "websearch", "haswell", 100.0, 0.01);

        assert_eq!(m.fleet().joules, 275.0);
        assert_eq!(m.observations(), 4);
        assert_eq!(m.leaves().count(), 3);
        assert_eq!(m.pools().count(), 2);
        let pool: Vec<_> = m.pools().collect();
        assert_eq!(pool[0].0, ("memkeyval", "skylake"));
        assert_eq!(pool[1].1.joules, 250.0);
    }

    #[test]
    fn top_leaves_rank_by_joules_with_deterministic_ties() {
        let mut m = EnergyMeter::new();
        m.observe_leaf(3, "a", "g", 10.0, 0.0);
        m.observe_leaf(1, "a", "g", 30.0, 0.0);
        m.observe_leaf(2, "a", "g", 30.0, 0.0);
        let top = m.top_leaves(2);
        assert_eq!(top[0].0, 1, "tie must break toward the lower id");
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn conservation_error_is_zero_for_consistent_ledgers() {
        let mut m = EnergyMeter::new();
        for leaf in 0..50u64 {
            m.observe_leaf(
                leaf,
                if leaf % 2 == 0 { "a" } else { "b" },
                "g",
                0.1 * leaf as f64,
                0.0,
            );
        }
        assert!(m.conservation_error() < 1e-9, "{}", m.conservation_error());
    }
}
