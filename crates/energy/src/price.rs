//! Time-of-day electricity pricing and the energy-plane configuration.

use serde::{Deserialize, Serialize};

/// Joules per kilowatt-hour.
const JOULES_PER_KWH: f64 = 3.6e6;

/// The hour-of-day (`[0, 24)`) a represented wall-clock time falls in.
///
/// Fleet steps represent `window_s × windows_per_step × time_compression`
/// seconds of wall time; feeding that cumulative represented time here maps
/// a simulated step onto the diurnal price curve.
pub fn hour_of_day(represented_seconds: f64) -> f64 {
    let h = (represented_seconds / 3600.0) % 24.0;
    if h < 0.0 {
        h + 24.0
    } else {
        h
    }
}

/// Converts metered joules into dollars at a $/kWh rate, grossed up by the
/// facility PUE (every IT joule drags `pue − 1` joules of cooling and
/// distribution overhead with it).
pub fn joules_to_dollars(joules: f64, per_kwh: f64, pue: f64) -> f64 {
    joules / JOULES_PER_KWH * per_kwh * pue
}

/// A deterministic time-of-day electricity price curve, in $/kWh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnergyPriceSchedule {
    /// One price all day (the paper's TCO case study uses a flat
    /// $0.10/kWh).
    Flat {
        /// Price in $/kWh.
        per_kwh: f64,
    },
    /// A two-tier utility tariff: `peak_per_kwh` inside
    /// `[peak_start_hour, peak_end_hour)`, `offpeak_per_kwh` elsewhere.
    PeakOffpeak {
        /// Off-peak price in $/kWh.
        offpeak_per_kwh: f64,
        /// Peak price in $/kWh.
        peak_per_kwh: f64,
        /// First peak hour (inclusive, `0..24`).
        peak_start_hour: u32,
        /// Last peak hour (exclusive, `0..=24`).
        peak_end_hour: u32,
    },
    /// A carbon-intensity proxy curve: price (or carbon cost) is lowest
    /// when solar output peaks at midday and highest in the evening ramp.
    /// `price = base + premium × intensity(hour)` where the intensity is
    /// `1 − max(0, sin(π(hour − 6) / 12))` — 0 at solar noon, 1 all night.
    CarbonAware {
        /// Floor price in $/kWh at zero grid carbon intensity.
        base_per_kwh: f64,
        /// Additional $/kWh at full carbon intensity.
        premium_per_kwh: f64,
    },
}

impl EnergyPriceSchedule {
    /// The flat schedule matching the paper's $0.10/kWh TCO case study.
    pub fn paper_flat() -> Self {
        EnergyPriceSchedule::Flat { per_kwh: 0.10 }
    }

    /// A peak/off-peak tariff with the same 24h mean as
    /// [`paper_flat`](Self::paper_flat): $0.05 off-peak, $0.20 on-peak
    /// during the 8-hour business peak (hours 10–18).
    pub fn business_peak() -> Self {
        EnergyPriceSchedule::PeakOffpeak {
            offpeak_per_kwh: 0.05,
            peak_per_kwh: 0.20,
            peak_start_hour: 10,
            peak_end_hour: 18,
        }
    }

    /// The $/kWh price at an hour of day (`hour` taken modulo 24).
    pub fn price_at(&self, hour: f64) -> f64 {
        let hour = hour_of_day(hour * 3600.0);
        match *self {
            EnergyPriceSchedule::Flat { per_kwh } => per_kwh,
            EnergyPriceSchedule::PeakOffpeak {
                offpeak_per_kwh,
                peak_per_kwh,
                peak_start_hour,
                peak_end_hour,
            } => {
                let h = hour as u32;
                if h >= peak_start_hour && h < peak_end_hour {
                    peak_per_kwh
                } else {
                    offpeak_per_kwh
                }
            }
            EnergyPriceSchedule::CarbonAware { base_per_kwh, premium_per_kwh } => {
                let solar = (std::f64::consts::PI * (hour - 6.0) / 12.0).sin().max(0.0);
                base_per_kwh + premium_per_kwh * (1.0 - solar)
            }
        }
    }

    /// The schedule's mean price over the 24 hours, sampled hourly — the
    /// reference an energy-aware policy compares the current price against
    /// to call an hour "cheap" or "expensive".
    pub fn daily_mean(&self) -> f64 {
        (0..24).map(|h| self.price_at(h as f64 + 0.5)).sum::<f64>() / 24.0
    }
}

impl Default for EnergyPriceSchedule {
    fn default() -> Self {
        EnergyPriceSchedule::paper_flat()
    }
}

/// Configuration of the fleet energy plane.
///
/// Like `TelemetryConfig`, the default is everything off; metering is a
/// read-only shadow (bit-identical simulation on or off), while a power
/// cap is an explicit behavioral knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Installs the [`EnergyMeter`](crate::EnergyMeter) ledgers
    /// (per-leaf / per-pool / fleet joules and dollars).
    pub metering: bool,
    /// The electricity price curve used to turn joules into dollars.
    pub price: EnergyPriceSchedule,
    /// Facility power-usage effectiveness multiplier on metered IT joules
    /// (the paper's case study datacenter runs at 2.0).
    pub pue: f64,
    /// Cluster-wide package power budget in watts.  When set, the
    /// [`PowerCapCoordinator`](crate::PowerCapCoordinator) distributes it
    /// into per-leaf RAPL caps every step.
    pub power_cap_w: Option<f64>,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            metering: false,
            price: EnergyPriceSchedule::default(),
            pue: 2.0,
            power_cap_w: None,
        }
    }
}

impl EnergyConfig {
    /// Metering on, no cap: the read-only shadow configuration.
    pub fn metered() -> Self {
        EnergyConfig { metering: true, ..EnergyConfig::default() }
    }

    /// Metering on under a cluster watt budget.
    pub fn capped(budget_w: f64) -> Self {
        EnergyConfig { metering: true, power_cap_w: Some(budget_w), ..EnergyConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_of_day_wraps_days() {
        assert_eq!(hour_of_day(0.0), 0.0);
        assert_eq!(hour_of_day(3600.0), 1.0);
        assert_eq!(hour_of_day(25.0 * 3600.0), 1.0);
        assert!((hour_of_day(-3600.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn flat_price_matches_the_paper_case_study() {
        let p = EnergyPriceSchedule::paper_flat();
        for h in [0.0, 6.5, 12.0, 23.9] {
            assert_eq!(p.price_at(h), 0.10);
        }
        assert!((p.daily_mean() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn peak_offpeak_steps_at_the_boundaries() {
        let p = EnergyPriceSchedule::business_peak();
        assert_eq!(p.price_at(9.9), 0.05);
        assert_eq!(p.price_at(10.0), 0.20);
        assert_eq!(p.price_at(17.9), 0.20);
        assert_eq!(p.price_at(18.0), 0.05);
        assert!((p.daily_mean() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn carbon_curve_dips_at_solar_noon_and_peaks_at_night() {
        let p = EnergyPriceSchedule::CarbonAware { base_per_kwh: 0.05, premium_per_kwh: 0.10 };
        let noon = p.price_at(12.0);
        let night = p.price_at(0.0);
        assert!(noon < night, "noon {noon} night {night}");
        assert!((noon - 0.05).abs() < 1e-9);
        assert!((night - 0.15).abs() < 1e-9);
    }

    #[test]
    fn joules_to_dollars_applies_pue() {
        // 1 kWh of IT energy at $0.10/kWh and PUE 2.0 costs 20 cents.
        let d = joules_to_dollars(3.6e6, 0.10, 2.0);
        assert!((d - 0.20).abs() < 1e-12);
    }
}
