//! The cluster power-cap coordinator.
//!
//! Algorithm 3 in the paper caps one server: when RAPL reports the package
//! near TDP it first shaves the best-effort cores' DVFS frequency and only
//! ever defends the latency-critical cores' guaranteed frequency.  The
//! coordinator lifts that ordering to the fleet: a cluster watt budget is
//! split into per-leaf RAPL-style package caps (each leaf's power model
//! then walks *both* classes down only as far as its own cap requires),
//! and when the budget is tight the fleet additionally stops admitting new
//! best-effort jobs — BE work is shaved first, LC capacity is touched
//! last.

use std::collections::BTreeMap;

/// The transient-overshoot allowance the package power model grants its
/// effective TDP: a leaf capped at `c` watts never reports more than
/// `CAP_OVERSHOOT × c`.  The coordinator divides each leaf's budget share
/// by this factor, so the fleet's worst-case draw is exactly the budget.
pub const CAP_OVERSHOOT: f64 = 1.05;

/// When the budget falls below this fraction of the fleet's aggregate TDP,
/// the plan additionally throttles BE admission (shave BE first): DVFS
/// alone would have to push leaves so deep that latency-critical work pays
/// for best-effort joules.
pub const BE_THROTTLE_FRACTION: f64 = 0.7;

/// One leaf's share of the cluster budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafCapAssignment {
    /// The leaf (fleet server id).
    pub leaf: u64,
    /// The RAPL package cap to impose, in watts.
    pub cap_w: f64,
}

/// The coordinator's decision for one step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CapPlan {
    /// The cluster budget the plan enforces, in watts.
    pub budget_w: f64,
    /// Aggregate TDP of the leaves the plan covers, in watts.
    pub total_tdp_w: f64,
    /// Per-leaf cap assignments, in leaf order.  Empty when the budget
    /// clears every leaf's TDP — uncapped leaves already cannot exceed it.
    pub assignments: Vec<LeafCapAssignment>,
    /// True when the budget is tight enough that BE admission must stop
    /// fleet-wide (Algorithm 3's "shave BE first", lifted to admission).
    pub throttle_be: bool,
}

impl CapPlan {
    /// The worst-case fleet draw under this plan, in watts: each capped
    /// leaf can transiently reach `CAP_OVERSHOOT × cap`, an uncapped fleet
    /// can reach `CAP_OVERSHOOT × ΣTDP`.
    pub fn worst_case_w(&self) -> f64 {
        if self.assignments.is_empty() {
            self.total_tdp_w * CAP_OVERSHOOT
        } else {
            self.assignments.iter().map(|a| a.cap_w * CAP_OVERSHOOT).sum()
        }
    }
}

/// Distributes a cluster watt budget into per-leaf RAPL caps.
///
/// The coordinator is analytic: a plan is a pure function of the fleet's
/// composition (leaf ids and TDPs) and the budget, recomputed every step,
/// so capping decisions are deterministic and identical across simulation
/// cores.  It remembers the caps it last applied so the fleet can emit a
/// trace event only when a leaf's cap actually changes.
#[derive(Debug, Clone, Default)]
pub struct PowerCapCoordinator {
    budget_w: f64,
    /// Cap bits last applied per leaf (bitwise, so "changed" is exact).
    applied: BTreeMap<u64, u64>,
}

impl PowerCapCoordinator {
    /// A coordinator enforcing `budget_w` watts across the fleet.
    pub fn new(budget_w: f64) -> Self {
        PowerCapCoordinator { budget_w: budget_w.max(0.0), applied: BTreeMap::new() }
    }

    /// The cluster budget in watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Computes the plan for the current fleet composition: `leaves` is
    /// the `(leaf id, TDP watts)` roster of active servers.
    ///
    /// Each leaf's budget share is proportional to its TDP (a bigger
    /// machine gets a proportionally bigger slice, so all generations
    /// throttle to the same fraction of their capability), divided by
    /// [`CAP_OVERSHOOT`] so that even transient per-leaf overshoot keeps
    /// the fleet sum at or under the budget.  When the budget covers the
    /// whole roster's worst case, no caps are needed and the plan is
    /// empty.
    pub fn plan(&self, leaves: &[(u64, f64)]) -> CapPlan {
        let total_tdp_w: f64 = leaves.iter().map(|&(_, tdp)| tdp.max(0.0)).sum();
        let mut plan = CapPlan { budget_w: self.budget_w, total_tdp_w, ..CapPlan::default() };
        if leaves.is_empty() || total_tdp_w <= 0.0 {
            return plan;
        }
        if self.budget_w >= total_tdp_w * CAP_OVERSHOOT {
            // The uncapped fleet cannot exceed the budget even with every
            // package at its transient ceiling.
            return plan;
        }
        plan.throttle_be = self.budget_w < total_tdp_w * BE_THROTTLE_FRACTION;
        plan.assignments = leaves
            .iter()
            .map(|&(leaf, tdp)| {
                let share = tdp.max(0.0) / total_tdp_w;
                LeafCapAssignment { leaf, cap_w: self.budget_w * share / CAP_OVERSHOOT }
            })
            .collect();
        plan
    }

    /// Records that `cap` was applied to `leaf`, returning true when it
    /// differs (bitwise) from what the coordinator last applied there —
    /// the fleet traces exactly those transitions.
    pub fn note_applied(&mut self, leaf: u64, cap: Option<f64>) -> bool {
        match cap {
            Some(c) => self.applied.insert(leaf, c.to_bits()) != Some(c.to_bits()),
            None => self.applied.remove(&leaf).is_some(),
        }
    }

    /// Forgets a retired leaf.
    pub fn forget(&mut self, leaf: u64) {
        self.applied.remove(&leaf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ample_budget_leaves_the_fleet_uncapped() {
        let c = PowerCapCoordinator::new(10_000.0);
        let plan = c.plan(&[(0, 290.0), (1, 290.0)]);
        assert!(plan.assignments.is_empty());
        assert!(!plan.throttle_be);
        assert!(plan.worst_case_w() <= 10_000.0);
    }

    #[test]
    fn tight_budget_splits_proportionally_and_bounds_the_sum() {
        let c = PowerCapCoordinator::new(400.0);
        let plan = c.plan(&[(0, 290.0), (1, 290.0), (2, 165.0)]);
        assert_eq!(plan.assignments.len(), 3);
        // Proportional: equal-TDP leaves get equal caps.
        assert_eq!(plan.assignments[0].cap_w.to_bits(), plan.assignments[1].cap_w.to_bits());
        assert!(plan.assignments[2].cap_w < plan.assignments[0].cap_w);
        // The worst case (every leaf at 1.05 × cap) is exactly the budget.
        assert!((plan.worst_case_w() - 400.0).abs() < 1e-9, "{}", plan.worst_case_w());
        // 400 / 745 < 0.7 → BE admission throttles too.
        assert!(plan.throttle_be);
    }

    #[test]
    fn moderate_budget_caps_without_throttling_be() {
        let c = PowerCapCoordinator::new(600.0);
        let plan = c.plan(&[(0, 290.0), (1, 290.0)]);
        assert!(!plan.assignments.is_empty());
        assert!(!plan.throttle_be, "600 of 580 TDP is not a tight budget");
    }

    #[test]
    fn note_applied_reports_transitions_only() {
        let mut c = PowerCapCoordinator::new(100.0);
        assert!(c.note_applied(7, Some(50.0)), "first application is a transition");
        assert!(!c.note_applied(7, Some(50.0)), "same cap again is not");
        assert!(c.note_applied(7, Some(60.0)));
        assert!(c.note_applied(7, None), "clearing an applied cap is a transition");
        assert!(!c.note_applied(7, None));
    }

    #[test]
    fn empty_roster_yields_an_inert_plan() {
        let plan = PowerCapCoordinator::new(100.0).plan(&[]);
        assert!(plan.assignments.is_empty());
        assert_eq!(plan.total_tdp_w, 0.0);
    }
}
