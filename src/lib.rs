//! Facade crate for the Heracles reproduction workspace.
//!
//! The actual implementation lives in the `crates/` workspace members; this
//! crate re-exports each of them under a stable module name so downstream
//! users (and the top-level `tests/` and `examples/`) can depend on a single
//! package.  The crate map:
//!
//! * [`sim`] — deterministic simulation kernel (time, RNG, queues, stats),
//! * [`telemetry`] — decision tracing, metrics registry, flight recorder,
//! * [`hw`] — server hardware model (cores, LLC, DRAM, power, NIC),
//! * [`isolation`] — the four isolation actuators plus monitors,
//! * [`workloads`] — LC service and BE task models,
//! * [`core`] — the Heracles controller (Algorithms 1–4),
//! * [`baselines`] — LC-only / OS-only / static-partition policies,
//! * [`colo`] — single-server colocation harness and characterization,
//! * [`cluster`] — websearch fan-out cluster and the TCO model,
//! * [`fleet`] — cluster-wide BE job scheduler over per-server Heracles
//!   controllers (job queue, placement store, placement policies),
//! * [`autoscale`] — elastic fleet controller over [`fleet`]: buys, drains
//!   and live-migrates by marginal TCO,
//! * [`bench`] — shared helpers for the figure-reproduction binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use heracles_autoscale as autoscale;
pub use heracles_baselines as baselines;
pub use heracles_bench as bench;
pub use heracles_cluster as cluster;
pub use heracles_colo as colo;
pub use heracles_core as core;
pub use heracles_fleet as fleet;
pub use heracles_hw as hw;
pub use heracles_isolation as isolation;
pub use heracles_sim as sim;
pub use heracles_telemetry as telemetry;
pub use heracles_workloads as workloads;
